package gateway

import (
	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/node"
)

// Routing: senders are partitioned into Clusters deterministic
// clusters by the low four bytes of their public key — the exact
// arithmetic txflow uses to pick a mempool shard, so a sender's
// transactions always take the same path no matter which gateway
// admits them (flow-go routes collections to clusters by tx-hash the
// same way). Cluster i is served by the consensus nodes
// Consensus[j] with j ≡ i (mod Clusters); each flush unicasts the
// cluster's batch to FanOut of its members, rotating round-robin, so
// a crashed member costs redundancy, not delivery.
//
// The receiving consensus node re-admits the batch into its own
// txflow pipeline and re-gossips fresh transactions network-wide via
// its flush process, which is what gets a routed transaction into
// every proposer's mempool before the next proposal fires.

// ClusterOf maps a sender to its routing cluster.
func ClusterOf(pk crypto.PublicKey, clusters int) int {
	if clusters <= 1 {
		return 0
	}
	idx := uint64(pk[0]) | uint64(pk[1])<<8 | uint64(pk[2])<<16 | uint64(pk[3])<<24
	return int(idx % uint64(clusters))
}

// clusterMembers returns the consensus nodes serving cluster ci.
func (g *Gateway) clusterMembers(ci int) []int {
	var members []int
	for j, id := range g.cfg.Consensus {
		if j%g.cfg.Clusters == ci {
			members = append(members, id)
		}
	}
	if len(members) == 0 {
		members = g.cfg.Consensus
	}
	return members
}

// flushOnce drains freshly admitted transactions and routes them.
func (g *Gateway) flushOnce() {
	for _, batch := range g.flow.DrainOutbox(node.MaxTxBatchBytes) {
		g.route(batch)
	}
}

// route splits one drained batch by cluster and unicasts each
// cluster's slice, re-packed under the TxBatch cap, to FanOut members.
func (g *Gateway) route(txs []ledger.Transaction) {
	if len(txs) == 0 {
		return
	}
	byCluster := make(map[int][]ledger.Transaction)
	for _, tx := range txs {
		ci := ClusterOf(tx.From, g.cfg.Clusters)
		byCluster[ci] = append(byCluster[ci], tx)
	}
	for ci, group := range byCluster {
		g.sendToCluster(ci, group)
	}
}

// sendToCluster packs group into ≤MaxTxBatchBytes batches and
// unicasts each to FanOut members of the cluster, rotating the
// round-robin cursor.
func (g *Gateway) sendToCluster(ci int, group []ledger.Transaction) {
	members := g.clusterMembers(ci)
	fan := g.cfg.FanOut
	if fan > len(members) {
		fan = len(members)
	}
	var pack []ledger.Transaction
	packBytes := 0
	emit := func() {
		if len(pack) == 0 {
			return
		}
		for k := 0; k < fan; k++ {
			target := members[(g.rr[ci]+k)%len(members)]
			g.net.Unicast(g.ID, target, &node.TxBatch{Txns: pack})
			g.c.batchesRouted.Inc()
		}
		g.rr[ci] = (g.rr[ci] + 1) % len(members)
		g.c.txsRouted.Add(uint64(len(pack)))
		g.c.bytesRouted.Add(uint64(packBytes) * uint64(fan))
		pack, packBytes = nil, 0
	}
	for _, tx := range group {
		sz := tx.WireSize()
		if packBytes+sz > node.MaxTxBatchBytes {
			emit()
		}
		pack = append(pack, tx)
		packBytes += sz
	}
	emit()
}

// resendPending re-routes transactions that are still pending in the
// gateway mempool — admitted, routed, but not yet observed in a
// committed block. It drives delivery through consensus-node crashes
// and healed partitions: Assemble orders each sender's ready
// transactions against a snapshot of the read-model balances without
// removing anything from the pool, and the resend is bounded by
// ResendBudget per tick.
func (g *Gateway) resendPending() {
	if g.flow.Len() == 0 {
		return
	}
	balances, _ := g.rm.SnapshotBalances()
	txs := g.flow.Assemble(balances, g.cfg.ResendBudget)
	if len(txs) == 0 {
		return
	}
	g.c.resent.Add(uint64(len(txs)))
	g.route(txs)
}
