package gateway

import (
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/node"
	"algorand/internal/sortition"
	"algorand/internal/txflow"
	"algorand/internal/vtime"
)

// stubNet records the gateway's outgoing traffic without a network.
type stubNet struct {
	unicasts []stubSend
	gossips  []network.Message
	handler  network.Handler
}

type stubSend struct {
	to int
	m  network.Message
}

func (s *stubNet) Gossip(origin int, m network.Message) { s.gossips = append(s.gossips, m) }
func (s *stubNet) Unicast(from, to int, m network.Message) {
	s.unicasts = append(s.unicasts, stubSend{to: to, m: m})
}
func (s *stubNet) SetHandler(id int, h network.Handler) { s.handler = h }
func (s *stubNet) Neighbors(id int) []int               { return nil }

// testCommittee is the harness's certificate-verification
// configuration: a committee large enough that every funded identity
// votes, with thresholds the deterministic fast crypto always clears.
var testCommittee = ledger.CommitteeParams{
	TauStep: 120, StepThreshold: 5, TauFinal: 120, FinalThreshold: 5,
}

// testHarness is a gateway against a stub transport, plus a shadow
// ledger speaking for the consensus cluster: it proposes certified
// blocks the gateway's read model must verify.
type testHarness struct {
	sim   *vtime.Sim
	net   *stubNet
	gw    *Gateway
	prov  crypto.Provider
	ids   []crypto.Identity
	seed0 crypto.Digest
	l     *ledger.Ledger
}

func newHarness(t *testing.T, cfg Config, users int) *testHarness {
	t.Helper()
	sim := vtime.New()
	prov := crypto.NewFast()
	genesis := make(map[crypto.PublicKey]uint64, users)
	var ids []crypto.Identity
	for i := 0; i < users; i++ {
		id := prov.NewIdentity(crypto.SeedFromUint64(uint64(i) + 1))
		ids = append(ids, id)
		genesis[id.PublicKey()] = 1000
	}
	if cfg.Consensus == nil {
		cfg.Consensus = []int{0, 1, 2, 3, 4, 5, 6, 7}
	}
	cfg.Committee = testCommittee
	cfg.LedgerCfg = ledger.DefaultConfig()
	seed0 := crypto.HashBytes("gateway.test.seed0")
	net := &stubNet{}
	gw := New(100, sim, net, prov, cfg, genesis, seed0)
	l := ledger.New(prov, cfg.LedgerCfg, genesis, seed0)
	return &testHarness{sim: sim, net: net, gw: gw, prov: prov, ids: ids, seed0: seed0, l: l}
}

func (h *testHarness) tx(t *testing.T, from, to, nonce int) *ledger.Transaction {
	t.Helper()
	tx := &ledger.Transaction{
		From:   h.ids[from].PublicKey(),
		To:     h.ids[to].PublicKey(),
		Amount: 1,
		Fee:    1,
		Nonce:  uint64(nonce),
	}
	tx.Sign(h.ids[from])
	return tx
}

// propose builds a valid block extending the shadow ledger's head,
// proposed by ids[0], without committing it.
func (h *testHarness) propose(txs ...ledger.Transaction) *ledger.Block {
	id := h.ids[0]
	round := h.l.NextRound()
	out, proof := id.VRFProve(ledger.SeedAlpha(h.l.PrevSeed(), round))
	post := h.l.Balances().Clone()
	for i := range txs {
		post.ApplyTx(&txs[i])
	}
	return &ledger.Block{
		Round:     round,
		PrevHash:  h.l.HeadHash(),
		Timestamp: time.Duration(round) * time.Second,
		StateRoot: post.Root(),
		Seed:      ledger.SeedFromVRF(out),
		SeedProof: proof,
		Proposer:  id.PublicKey(),
		Txns:      txs,
	}
}

// certify builds a valid committee certificate for b at the shadow
// ledger's head by running sortition across the whole population.
func (h *testHarness) certify(b *ledger.Block, final bool) *ledger.Certificate {
	const step = 1
	value := b.Hash()
	seed := h.l.SortitionSeed(b.Round)
	weights, total := h.l.SortitionWeights(b.Round)
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: b.Round, Step: step}
	cert := &ledger.Certificate{Round: b.Round, Step: step, Value: value, Final: final}
	for _, id := range h.ids {
		res := sortition.Execute(id, seed[:], role, testCommittee.TauStep, weights[id.PublicKey()], total)
		if res.J == 0 {
			continue
		}
		v := ledger.Vote{
			Sender:    id.PublicKey(),
			Round:     b.Round,
			Step:      step,
			SortHash:  res.Output,
			SortProof: res.Proof,
			PrevHash:  h.l.HeadHash(),
			Value:     value,
		}
		v.Sign(id)
		cert.Votes = append(cert.Votes, v)
	}
	return cert
}

// advance commits one certified block (with the given transactions) on
// both the shadow ledger and, via a ChainReply, the gateway.
func (h *testHarness) advance(t *testing.T, txs ...ledger.Transaction) *ledger.Block {
	t.Helper()
	b := h.propose(txs...)
	cert := h.certify(b, false)
	if err := h.l.Commit(b, cert); err != nil {
		t.Fatalf("shadow commit: %v", err)
	}
	h.gw.applyRun([]*ledger.Block{b}, []*ledger.Certificate{cert})
	return b
}

func TestReadModelGenesisMatchesLedger(t *testing.T) {
	h := newHarness(t, Config{}, 3)
	_, head := h.gw.rm.Head()
	if head != h.l.HeadHash() {
		t.Fatalf("read-model genesis head %x != ledger genesis head %x", head, h.l.HeadHash())
	}
}

func TestClusterRoutingIsDeterministicAndStable(t *testing.T) {
	h := newHarness(t, Config{Clusters: 4}, 16)
	for _, id := range h.ids {
		pk := id.PublicKey()
		ci := ClusterOf(pk, 4)
		if ci != ClusterOf(pk, 4) {
			t.Fatal("routing not deterministic")
		}
		if ci < 0 || ci >= 4 {
			t.Fatalf("cluster %d out of range", ci)
		}
	}
	// Every cluster's member set is disjoint and covers Consensus.
	seen := map[int]bool{}
	for ci := 0; ci < 4; ci++ {
		for _, m := range h.gw.clusterMembers(ci) {
			if seen[m] {
				t.Fatalf("consensus node %d serves two clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != len(h.gw.cfg.Consensus) {
		t.Fatalf("cluster members cover %d of %d consensus nodes", len(seen), len(h.gw.cfg.Consensus))
	}
}

func TestSubmitRoutesToSenderCluster(t *testing.T) {
	h := newHarness(t, Config{Clusters: 4, FanOut: 2}, 8)
	tx := h.tx(t, 0, 1, 0)
	if err := h.gw.Submit(tx); err != nil {
		t.Fatalf("submit: %v", err)
	}
	h.gw.flushOnce()
	if len(h.net.unicasts) != 2 {
		t.Fatalf("want FanOut=2 unicasts, got %d", len(h.net.unicasts))
	}
	wantCluster := ClusterOf(tx.From, 4)
	members := h.gw.clusterMembers(wantCluster)
	memberSet := map[int]bool{}
	for _, m := range members {
		memberSet[m] = true
	}
	for _, u := range h.net.unicasts {
		if !memberSet[u.to] {
			t.Fatalf("batch routed to node %d outside cluster %d members %v", u.to, wantCluster, members)
		}
		batch, ok := u.m.(*node.TxBatch)
		if !ok || len(batch.Txns) != 1 || batch.Txns[0].ID() != tx.ID() {
			t.Fatalf("unexpected routed message %#v", u.m)
		}
	}
}

func TestAnnounceDrivesChainFetchAndCertifiedApply(t *testing.T) {
	h := newHarness(t, Config{}, 4)
	b1 := h.propose(*h.tx(t, 0, 1, 0))
	cert1 := h.certify(b1, false)

	// One announce suffices: the fetched certificates carry the trust.
	h.net.SetHandler(100, network.HandlerFunc(h.gw.handleMessage))
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 1, Hash: b1.Hash(), Announcer: 0})
	if len(h.net.unicasts) != 1 {
		t.Fatalf("want 1 chain fetch, got %d", len(h.net.unicasts))
	}
	req, ok := h.net.unicasts[0].m.(*node.ChainRequest)
	if !ok || req.FromRound != 1 || h.net.unicasts[0].to != 0 {
		t.Fatalf("unexpected fetch %#v", h.net.unicasts[0])
	}
	// The certified reply applies the block.
	h.gw.handleMessage(0, &node.ChainReply{
		Blocks: []*ledger.Block{b1}, Certs: []*ledger.Certificate{cert1}, Recipient: 100,
	})
	round, head := h.gw.rm.Head()
	if round != 1 || head != b1.Hash() {
		t.Fatalf("head = (%d, %x), want (1, %x)", round, head, b1.Hash())
	}
	// Balances moved and the tx is committed.
	money, nonce, asOf := h.gw.rm.Balance(h.ids[0].PublicKey())
	if money != 998 || nonce != 1 || asOf != 1 {
		t.Fatalf("sender state = (%d, %d, %d), want (998, 1, 1)", money, nonce, asOf)
	}
	status, r, _ := h.gw.rm.TxStatus(b1.Txns[0].ID())
	if status != StatusCommitted || r != 1 {
		t.Fatalf("tx status = (%s, %d), want (committed, 1)", status, r)
	}
}

func TestApplyRejectsUncertifiedAndForgedBlocks(t *testing.T) {
	h := newHarness(t, Config{}, 4)
	b1 := h.propose(*h.tx(t, 0, 1, 0))

	// No certificate at all: the run has no anchor, nothing applies.
	if applied, _, _ := h.gw.rm.ApplyRun([]*ledger.Block{b1}, nil); len(applied) != 0 {
		t.Fatal("applied a block without any certificate")
	}

	// A certificate signed by nobody in the committee: rejected.
	forged := &ledger.Certificate{Round: 1, Step: 1, Value: b1.Hash()}
	forged.Votes = []ledger.Vote{{Sender: h.ids[0].PublicKey(), Round: 1, Step: 1, Value: b1.Hash()}}
	if applied, _, err := h.gw.rm.ApplyRun(
		[]*ledger.Block{b1}, []*ledger.Certificate{forged}); len(applied) != 0 || err == nil {
		t.Fatal("applied a block under a forged certificate")
	}

	// A valid certificate for a DIFFERENT block must not certify b2.
	cert1 := h.certify(b1, false)
	b2 := h.propose() // same round, no txs, different hash
	if b2.Hash() == b1.Hash() {
		t.Fatal("test blocks collide")
	}
	if applied, _, _ := h.gw.rm.ApplyRun(
		[]*ledger.Block{b2}, []*ledger.Certificate{cert1}); len(applied) != 0 {
		t.Fatal("applied a block under another block's certificate")
	}

	// The genuine pair applies.
	applied, _, err := h.gw.rm.ApplyRun([]*ledger.Block{b1}, []*ledger.Certificate{cert1})
	if err != nil || len(applied) != 1 {
		t.Fatalf("genuine certified block rejected: %v", err)
	}
	if st := h.gw.Stats(); st.CertRejects != 0 {
		// ApplyRun was called directly; the counter moves via applyRun.
		t.Fatalf("unexpected cert rejects %d", st.CertRejects)
	}
}

func TestForgedReplyCountsCertReject(t *testing.T) {
	h := newHarness(t, Config{}, 4)
	b1 := h.propose(*h.tx(t, 0, 1, 0))
	forged := &ledger.Certificate{Round: 1, Step: 1, Value: b1.Hash(),
		Votes: []ledger.Vote{{Sender: h.ids[1].PublicKey(), Round: 1, Step: 1, Value: b1.Hash()}}}
	h.gw.handleMessage(0, &node.ChainReply{
		Blocks: []*ledger.Block{b1}, Certs: []*ledger.Certificate{forged}, Recipient: 100,
	})
	if round, _ := h.gw.rm.Head(); round != 0 {
		t.Fatalf("forged reply moved the head to %d", round)
	}
	if st := h.gw.Stats(); st.CertRejects != 1 || st.BlocksApplied != 0 {
		t.Fatalf("stats certRejects=%d blocksApplied=%d, want 1/0", st.CertRejects, st.BlocksApplied)
	}
}

func TestGapTriggersChainFillAndCatchUp(t *testing.T) {
	h := newHarness(t, Config{}, 4)
	// Build rounds 1..3 on the shadow ledger (committed there only).
	var blocks []*ledger.Block
	var certs []*ledger.Certificate
	for r := 0; r < 3; r++ {
		b := h.propose()
		c := h.certify(b, false)
		if err := h.l.Commit(b, c); err != nil {
			t.Fatalf("shadow commit: %v", err)
		}
		blocks = append(blocks, b)
		certs = append(certs, c)
	}

	// The gateway hears about round 3 only (it was down for 1 and 2).
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 3, Hash: blocks[2].Hash(), Announcer: 0})
	if len(h.net.unicasts) != 1 {
		t.Fatalf("want 1 chain request, got %d", len(h.net.unicasts))
	}
	req, ok := h.net.unicasts[0].m.(*node.ChainRequest)
	if !ok || req.FromRound != 1 {
		t.Fatalf("unexpected gap fill %#v", h.net.unicasts[0].m)
	}
	// The reply catches the model up, verifying every certificate.
	h.gw.handleMessage(1, &node.ChainReply{Blocks: blocks, Certs: certs, Recipient: 100})
	round, head := h.gw.rm.Head()
	if round != 3 || head != blocks[2].Hash() {
		t.Fatalf("head = (%d, %x), want (3, %x)", round, head, blocks[2].Hash())
	}
}

func TestUncertifiedPrefixNeedsCertifiedAnchor(t *testing.T) {
	h := newHarness(t, Config{}, 4)
	b1 := h.propose()
	if err := h.l.Commit(b1, nil); err != nil {
		t.Fatalf("shadow commit: %v", err)
	}
	b2 := h.propose()
	cert2 := h.certify(b2, false)
	if err := h.l.Commit(b2, cert2); err != nil {
		t.Fatalf("shadow commit: %v", err)
	}

	// The uncertified block alone is held back…
	if applied, _, _ := h.gw.rm.ApplyRun([]*ledger.Block{b1}, nil); len(applied) != 0 {
		t.Fatal("applied an uncertified block with no anchor")
	}
	if round, _ := h.gw.rm.Head(); round != 0 {
		t.Fatalf("uncertified block moved the head to %d", round)
	}
	// …but commits beneath a later certified anchor (§8.3 transitivity).
	applied, _, err := h.gw.rm.ApplyRun(
		[]*ledger.Block{b1, b2}, []*ledger.Certificate{cert2})
	if err != nil || len(applied) != 2 {
		t.Fatalf("anchored run applied %d blocks, err %v; want 2", len(applied), err)
	}
	if round, head := h.gw.rm.Head(); round != 2 || head != b2.Hash() {
		t.Fatalf("head = (%d, %x), want (2, %x)", round, head, b2.Hash())
	}
}

func TestTypedRejectsCarryRetryHints(t *testing.T) {
	h := newHarness(t, Config{
		Flow: txflow.Config{RateLimit: 1, RateWindow: time.Second},
	}, 4)
	if err := h.gw.Submit(h.tx(t, 0, 1, 0)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	err := h.gw.Submit(h.tx(t, 0, 1, 1))
	if err == nil {
		t.Fatal("rate limit did not trip")
	}
	if wait, ok := txflow.RetryAfterHint(err); !ok || wait <= 0 {
		t.Fatalf("no retry hint on rate-limit reject: %v", err)
	}
	st := h.gw.Stats()
	if st.Admitted != 1 || st.Rejected != 1 {
		t.Fatalf("stats admitted=%d rejected=%d, want 1/1", st.Admitted, st.Rejected)
	}
}

func TestCommittedClearsPendingAndBlocksResubmission(t *testing.T) {
	h := newHarness(t, Config{}, 4)
	tx := h.tx(t, 0, 1, 0)
	if err := h.gw.Submit(tx); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if status, _, _ := h.gw.rm.TxStatus(tx.ID()); status != StatusPending {
		t.Fatalf("status before commit = %s, want pending", status)
	}
	h.advance(t, *tx)
	if status, r, _ := h.gw.rm.TxStatus(tx.ID()); status != StatusCommitted || r != 1 {
		t.Fatalf("status after commit = %s/%d", status, r)
	}
	if h.gw.flow.Len() != 0 {
		t.Fatalf("mempool still holds %d txs after commit", h.gw.flow.Len())
	}
	// Re-submitting the committed tx is now a stale nonce, not a fresh
	// admission.
	if err := h.gw.Submit(tx); err == nil {
		t.Fatal("re-admitted a committed transaction")
	}
}

func TestStaleAnnouncesDoNotFetch(t *testing.T) {
	h := newHarness(t, Config{}, 4)
	b1 := h.advance(t)
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 1, Hash: b1.Hash(), Announcer: 0})
	if len(h.net.unicasts) != 0 {
		t.Fatalf("stale announce triggered a fetch: %v", h.net.unicasts)
	}
	if st := h.gw.Stats(); st.StaleAnnounces != 1 {
		t.Fatalf("stale announces = %d, want 1", st.StaleAnnounces)
	}
}

func TestHaltedGatewayIgnoresTraffic(t *testing.T) {
	h := newHarness(t, Config{}, 4)
	h.gw.Halt()
	b1 := h.propose()
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 1, Hash: b1.Hash(), Announcer: 0})
	if len(h.net.unicasts) != 0 {
		t.Fatal("halted gateway fetched a block")
	}
	h.gw.Resume()
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 1, Hash: b1.Hash(), Announcer: 0})
	if len(h.net.unicasts) != 1 {
		t.Fatal("resumed gateway ignored an announce")
	}
}
