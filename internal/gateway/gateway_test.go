package gateway

import (
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/node"
	"algorand/internal/txflow"
	"algorand/internal/vtime"
)

// stubNet records the gateway's outgoing traffic without a network.
type stubNet struct {
	unicasts []stubSend
	gossips  []network.Message
	handler  network.Handler
}

type stubSend struct {
	to int
	m  network.Message
}

func (s *stubNet) Gossip(origin int, m network.Message) { s.gossips = append(s.gossips, m) }
func (s *stubNet) Unicast(from, to int, m network.Message) {
	s.unicasts = append(s.unicasts, stubSend{to: to, m: m})
}
func (s *stubNet) SetHandler(id int, h network.Handler) { s.handler = h }
func (s *stubNet) Neighbors(id int) []int               { return nil }

// testHarness is a gateway against a stub transport, plus the
// identities funding its genesis.
type testHarness struct {
	sim   *vtime.Sim
	net   *stubNet
	gw    *Gateway
	prov  crypto.Provider
	ids   []crypto.Identity
	seed0 crypto.Digest
}

func newHarness(t *testing.T, cfg Config, users int) *testHarness {
	t.Helper()
	sim := vtime.New()
	prov := crypto.NewFast()
	genesis := make(map[crypto.PublicKey]uint64, users)
	var ids []crypto.Identity
	for i := 0; i < users; i++ {
		id := prov.NewIdentity(crypto.SeedFromUint64(uint64(i) + 1))
		ids = append(ids, id)
		genesis[id.PublicKey()] = 1000
	}
	if cfg.Consensus == nil {
		cfg.Consensus = []int{0, 1, 2, 3, 4, 5, 6, 7}
	}
	seed0 := crypto.HashBytes("gateway.test.seed0")
	net := &stubNet{}
	gw := New(100, sim, net, prov, cfg, genesis, seed0)
	return &testHarness{sim: sim, net: net, gw: gw, prov: prov, ids: ids, seed0: seed0}
}

func (h *testHarness) tx(t *testing.T, from, to, nonce int) *ledger.Transaction {
	t.Helper()
	tx := &ledger.Transaction{
		From:   h.ids[from].PublicKey(),
		To:     h.ids[to].PublicKey(),
		Amount: 1,
		Fee:    1,
		Nonce:  uint64(nonce),
	}
	tx.Sign(h.ids[from])
	return tx
}

// block builds round r extending prev with the given transactions.
func (h *testHarness) block(r uint64, prev crypto.Digest, txs ...ledger.Transaction) *ledger.Block {
	return &ledger.Block{Round: r, PrevHash: prev, Seed: crypto.HashUint64("seed", r), Txns: txs}
}

func TestReadModelGenesisMatchesLedger(t *testing.T) {
	h := newHarness(t, Config{}, 3)
	genesis := make(map[crypto.PublicKey]uint64)
	for _, id := range h.ids {
		genesis[id.PublicKey()] = 1000
	}
	l := ledger.New(h.prov, ledger.Config{}, genesis, h.seed0)
	_, head := h.gw.rm.Head()
	if head != l.HeadHash() {
		t.Fatalf("read-model genesis head %x != ledger genesis head %x", head, l.HeadHash())
	}
}

func TestClusterRoutingIsDeterministicAndStable(t *testing.T) {
	h := newHarness(t, Config{Clusters: 4}, 16)
	for _, id := range h.ids {
		pk := id.PublicKey()
		ci := ClusterOf(pk, 4)
		if ci != ClusterOf(pk, 4) {
			t.Fatal("routing not deterministic")
		}
		if ci < 0 || ci >= 4 {
			t.Fatalf("cluster %d out of range", ci)
		}
	}
	// Every cluster's member set is disjoint and covers Consensus.
	seen := map[int]bool{}
	for ci := 0; ci < 4; ci++ {
		for _, m := range h.gw.clusterMembers(ci) {
			if seen[m] {
				t.Fatalf("consensus node %d serves two clusters", m)
			}
			seen[m] = true
		}
	}
	if len(seen) != len(h.gw.cfg.Consensus) {
		t.Fatalf("cluster members cover %d of %d consensus nodes", len(seen), len(h.gw.cfg.Consensus))
	}
}

func TestSubmitRoutesToSenderCluster(t *testing.T) {
	h := newHarness(t, Config{Clusters: 4, FanOut: 2}, 8)
	tx := h.tx(t, 0, 1, 0)
	if err := h.gw.Submit(tx); err != nil {
		t.Fatalf("submit: %v", err)
	}
	h.gw.flushOnce()
	if len(h.net.unicasts) != 2 {
		t.Fatalf("want FanOut=2 unicasts, got %d", len(h.net.unicasts))
	}
	wantCluster := ClusterOf(tx.From, 4)
	members := h.gw.clusterMembers(wantCluster)
	memberSet := map[int]bool{}
	for _, m := range members {
		memberSet[m] = true
	}
	for _, u := range h.net.unicasts {
		if !memberSet[u.to] {
			t.Fatalf("batch routed to node %d outside cluster %d members %v", u.to, wantCluster, members)
		}
		batch, ok := u.m.(*node.TxBatch)
		if !ok || len(batch.Txns) != 1 || batch.Txns[0].ID() != tx.ID() {
			t.Fatalf("unexpected routed message %#v", u.m)
		}
	}
}

func TestAnnounceQuorumDrivesFetchAndApply(t *testing.T) {
	h := newHarness(t, Config{AnnounceQuorum: 2}, 4)
	_, genesisHead := h.gw.rm.Head()
	b1 := h.block(1, genesisHead, *h.tx(t, 0, 1, 0))
	h1 := b1.Hash()

	// First announce: below quorum, no fetch.
	h.net.SetHandler(100, network.HandlerFunc(h.gw.handleMessage))
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 1, Hash: h1, Announcer: 0})
	if len(h.net.unicasts) != 0 {
		t.Fatalf("fetched below quorum: %v", h.net.unicasts)
	}
	// Second distinct announcer: quorum → BlockRequest to the announcer.
	h.gw.handleMessage(1, &node.CommitAnnounce{Round: 1, Hash: h1, Announcer: 1})
	if len(h.net.unicasts) != 1 {
		t.Fatalf("want 1 fetch, got %d", len(h.net.unicasts))
	}
	req, ok := h.net.unicasts[0].m.(*node.BlockRequest)
	if !ok || req.Hash != h1 || h.net.unicasts[0].to != 1 {
		t.Fatalf("unexpected fetch %#v", h.net.unicasts[0])
	}
	// The BlockFill answer applies the block.
	h.gw.handleMessage(1, &node.BlockFill{Block: b1, Recipient: 100})
	round, head := h.gw.rm.Head()
	if round != 1 || head != h1 {
		t.Fatalf("head = (%d, %x), want (1, %x)", round, head, h1)
	}
	// Balances moved and the tx is committed.
	money, nonce, asOf := h.gw.rm.Balance(h.ids[0].PublicKey())
	if money != 998 || nonce != 1 || asOf != 1 {
		t.Fatalf("sender state = (%d, %d, %d), want (998, 1, 1)", money, nonce, asOf)
	}
	status, r, _ := h.gw.rm.TxStatus(b1.Txns[0].ID())
	if status != StatusCommitted || r != 1 {
		t.Fatalf("tx status = (%s, %d), want (committed, 1)", status, r)
	}
}

func TestApplyRejectsForksAndQuorumMismatch(t *testing.T) {
	h := newHarness(t, Config{AnnounceQuorum: 2}, 4)
	_, genesisHead := h.gw.rm.Head()

	// Wrong PrevHash: rejected.
	bogus := h.block(1, crypto.HashBytes("not the head"))
	if ok, _ := h.gw.rm.Apply(bogus); ok {
		t.Fatal("applied a block that does not extend the head")
	}

	// Quorum formed for hash A; a different block B for the same round
	// must not apply even though it extends the head.
	a := h.block(1, genesisHead, *h.tx(t, 0, 1, 0))
	h.gw.rm.Observe(1, a.Hash(), 0)
	h.gw.rm.Observe(1, a.Hash(), 1)
	b := h.block(1, genesisHead) // empty variant, different hash
	if ok, _ := h.gw.rm.Apply(b); ok {
		t.Fatal("applied a block contradicting the announce quorum")
	}
	if ok, _ := h.gw.rm.Apply(a); !ok {
		t.Fatal("failed to apply the quorum block")
	}
}

func TestGapTriggersChainFillAndCatchUp(t *testing.T) {
	h := newHarness(t, Config{AnnounceQuorum: 2}, 4)
	_, genesisHead := h.gw.rm.Head()
	b1 := h.block(1, genesisHead)
	b2 := h.block(2, b1.Hash())
	b3 := h.block(3, b2.Hash())

	// The gateway hears about round 3 only (it was down for 1 and 2).
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 3, Hash: b3.Hash(), Announcer: 0})
	h.gw.handleMessage(1, &node.CommitAnnounce{Round: 3, Hash: b3.Hash(), Announcer: 1})
	if len(h.net.unicasts) != 1 {
		t.Fatalf("want 1 chain request, got %d", len(h.net.unicasts))
	}
	req, ok := h.net.unicasts[0].m.(*node.ChainRequest)
	if !ok || req.FromRound != 1 {
		t.Fatalf("unexpected gap fill %#v", h.net.unicasts[0].m)
	}
	// The reply catches the model up hash-by-hash.
	h.gw.handleMessage(1, &node.ChainReply{
		Blocks: []*ledger.Block{b1, b2, b3}, Recipient: 100,
	})
	round, head := h.gw.rm.Head()
	if round != 3 || head != b3.Hash() {
		t.Fatalf("head = (%d, %x), want (3, %x)", round, head, b3.Hash())
	}
}

func TestTypedRejectsCarryRetryHints(t *testing.T) {
	h := newHarness(t, Config{
		Flow: txflow.Config{RateLimit: 1, RateWindow: time.Second},
	}, 4)
	if err := h.gw.Submit(h.tx(t, 0, 1, 0)); err != nil {
		t.Fatalf("first submit: %v", err)
	}
	err := h.gw.Submit(h.tx(t, 0, 1, 1))
	if err == nil {
		t.Fatal("rate limit did not trip")
	}
	if wait, ok := txflow.RetryAfterHint(err); !ok || wait <= 0 {
		t.Fatalf("no retry hint on rate-limit reject: %v", err)
	}
	st := h.gw.Stats()
	if st.Admitted != 1 || st.Rejected != 1 {
		t.Fatalf("stats admitted=%d rejected=%d, want 1/1", st.Admitted, st.Rejected)
	}
}

func TestCommittedClearsPendingAndBlocksResubmission(t *testing.T) {
	h := newHarness(t, Config{AnnounceQuorum: 1}, 4)
	tx := h.tx(t, 0, 1, 0)
	if err := h.gw.Submit(tx); err != nil {
		t.Fatalf("submit: %v", err)
	}
	if status, _, _ := h.gw.rm.TxStatus(tx.ID()); status != StatusPending {
		t.Fatalf("status before commit = %s, want pending", status)
	}
	_, genesisHead := h.gw.rm.Head()
	b1 := h.block(1, genesisHead, *tx)
	h.gw.applyBlocks([]*ledger.Block{b1})
	if status, r, _ := h.gw.rm.TxStatus(tx.ID()); status != StatusCommitted || r != 1 {
		t.Fatalf("status after commit = %s/%d", status, r)
	}
	if h.gw.flow.Len() != 0 {
		t.Fatalf("mempool still holds %d txs after commit", h.gw.flow.Len())
	}
	// Re-submitting the committed tx is now a stale nonce, not a fresh
	// admission.
	if err := h.gw.Submit(tx); err == nil {
		t.Fatal("re-admitted a committed transaction")
	}
}

func TestTallyHorizonBoundsState(t *testing.T) {
	h := newHarness(t, Config{AnnounceQuorum: 2}, 4)
	// Far-future announces are dropped, near-future ones tallied.
	for r := uint64(1); r <= tallyHorizon+100; r++ {
		h.gw.rm.Observe(r, crypto.HashUint64("h", r), 0)
	}
	h.gw.rm.mu.RLock()
	n := len(h.gw.rm.tallies)
	h.gw.rm.mu.RUnlock()
	if n > tallyHorizon {
		t.Fatalf("tally map grew to %d (> horizon %d)", n, tallyHorizon)
	}
}

func TestHaltedGatewayIgnoresTraffic(t *testing.T) {
	h := newHarness(t, Config{AnnounceQuorum: 1}, 4)
	h.gw.Halt()
	_, genesisHead := h.gw.rm.Head()
	b1 := h.block(1, genesisHead)
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 1, Hash: b1.Hash(), Announcer: 0})
	if len(h.net.unicasts) != 0 {
		t.Fatal("halted gateway fetched a block")
	}
	h.gw.Resume()
	h.gw.handleMessage(0, &node.CommitAnnounce{Round: 1, Hash: b1.Hash(), Announcer: 0})
	if len(h.net.unicasts) != 1 {
		t.Fatal("resumed gateway ignored an announce")
	}
}
