package ledger

import (
	"errors"
	"fmt"
	"time"

	"algorand/internal/crypto"
)

// Config tunes the ledger's consensus-facing behavior.
type Config struct {
	// SeedRefreshInterval is R from §5.2: sortition at round r uses the
	// seed recorded at round r-1-(r mod R).
	SeedRefreshInterval uint64
	// LookbackRounds realizes the §5.3 look-back b in rounds: sortition
	// weights for round r come from the balances as of
	// seedRound - LookbackRounds. (The paper expresses b in wall time;
	// with ~minute-long rounds the two are interchangeable, and rounds
	// are what a deterministic simulation can count exactly.)
	LookbackRounds uint64
	// MinOfCurrentAndLookback enables the §5.3 "nothing at stake"
	// mitigation the paper sketches but does not explore: a user's
	// sortition weight is min(current balance, look-back balance), so
	// users who have since spent their money cannot leverage old
	// balances against the system.
	MinOfCurrentAndLookback bool
	// MaxTimestampSkew bounds how far a block timestamp may be ahead of
	// the validator's clock ("approximately current", §8.1).
	MaxTimestampSkew time.Duration
}

// DefaultConfig mirrors the paper's parameters at simulation scale.
func DefaultConfig() Config {
	return Config{
		SeedRefreshInterval: 1000,
		LookbackRounds:      0,
		MaxTimestampSkew:    time.Hour,
	}
}

// entry is a block we know about, with its running state.
type entry struct {
	block    *Block
	hash     crypto.Digest
	parent   *entry
	balances *Balances // state after applying block
	cert     *Certificate
	final    bool
}

// Ledger is one user's view of the blockchain. It tracks the canonical
// chain (head), every fork it has heard of (for §8.2 recovery), seed
// history, and per-block balance snapshots for look-back weights.
type Ledger struct {
	cfg      Config
	provider crypto.Provider

	entries map[crypto.Digest]*entry
	byRound map[uint64][]*entry
	genesis *entry
	head    *entry
	// lastFinal is the most recent block known to have a final
	// certificate on the head chain.
	lastFinal *entry

	// pendingBlocks holds proposal pre-images by hash that are not yet
	// committed (BlockOfHash in Algorithm 3 resolves from here).
	pendingBlocks map[crypto.Digest]*Block
}

// New creates a ledger from genesis accounts and the bootstrap seed
// seed0 (§8.3: the genesis block and seed are common knowledge).
func New(p crypto.Provider, cfg Config, genesisAccounts map[crypto.PublicKey]uint64, seed0 crypto.Digest) *Ledger {
	bal := NewBalances(genesisAccounts)
	gBlock := &Block{Round: 0, Seed: seed0, StateRoot: bal.Root()}
	l := &Ledger{
		cfg:           cfg,
		provider:      p,
		entries:       make(map[crypto.Digest]*entry),
		byRound:       make(map[uint64][]*entry),
		pendingBlocks: make(map[crypto.Digest]*Block),
	}
	e := &entry{
		block:    gBlock,
		hash:     gBlock.Hash(),
		balances: bal,
		final:    true,
	}
	l.entries[e.hash] = e
	l.byRound[0] = []*entry{e}
	l.genesis = e
	l.head = e
	l.lastFinal = e
	return l
}

// Head returns the last block on the canonical chain.
func (l *Ledger) Head() *Block { return l.head.block }

// HeadHash returns the canonical chain tip's hash.
func (l *Ledger) HeadHash() crypto.Digest { return l.head.hash }

// NextRound returns the round the user should run BA⋆ for next.
func (l *Ledger) NextRound() uint64 { return l.head.block.Round + 1 }

// GenesisHash returns the genesis block's hash.
func (l *Ledger) GenesisHash() crypto.Digest { return l.genesis.hash }

// LastFinal returns the most recent final block on the head chain.
func (l *Ledger) LastFinal() *Block { return l.lastFinal.block }

// Balances returns the state after the head block. Callers must not
// mutate it.
func (l *Ledger) Balances() *Balances { return l.head.balances }

// TotalMoney returns the money supply W.
func (l *Ledger) TotalMoney() uint64 { return l.head.balances.Total }

// ancestorAt walks from e back to the entry at the given round.
func ancestorAt(e *entry, round uint64) *entry {
	for e != nil && e.block.Round > round {
		e = e.parent
	}
	if e == nil || e.block.Round != round {
		return nil
	}
	return e
}

// seedRound returns the round whose block supplies the sortition seed
// for round r: r-1-(r mod R), clamped at genesis (§5.2).
func (l *Ledger) seedRound(r uint64) uint64 {
	if r == 0 {
		return 0
	}
	R := l.cfg.SeedRefreshInterval
	if R == 0 {
		R = 1
	}
	back := 1 + (r % R)
	if back > r {
		return 0
	}
	return r - back
}

// SortitionSeed returns the seed to use for sortition at round r, read
// from the head chain.
func (l *Ledger) SortitionSeed(r uint64) crypto.Digest {
	e := ancestorAt(l.head, l.seedRound(r))
	if e == nil {
		return l.genesis.block.Seed
	}
	return e.block.Seed
}

// SortitionWeights returns the balance snapshot used to weigh sortition
// at round r, applying the look-back rule (§5.3), along with the total.
// With MinOfCurrentAndLookback it instead returns, per user, the
// smaller of the look-back and current balances (the paper's suggested
// "nothing at stake" mitigation).
func (l *Ledger) SortitionWeights(r uint64) (map[crypto.PublicKey]uint64, uint64) {
	wr := l.seedRound(r)
	if wr >= l.cfg.LookbackRounds {
		wr -= l.cfg.LookbackRounds
	} else {
		wr = 0
	}
	e := ancestorAt(l.head, wr)
	if e == nil {
		e = l.genesis
	}
	if !l.cfg.MinOfCurrentAndLookback {
		return e.balances.Money, e.balances.Total
	}
	cur := l.head.balances
	min := make(map[crypto.PublicKey]uint64, len(e.balances.Money))
	var total uint64
	for pk, w := range e.balances.Money {
		if c := cur.Money[pk]; c < w {
			w = c
		}
		if w > 0 {
			min[pk] = w
			total += w
		}
	}
	return min, total
}

// PrevSeed returns the seed of the head block (seed_{r-1} needed to
// derive or check the seed of the next proposed block).
func (l *Ledger) PrevSeed() crypto.Digest { return l.head.block.Seed }

// RegisterProposal remembers a proposed block by hash so that a later
// BA⋆ agreement on that hash can be resolved to block contents.
func (l *Ledger) RegisterProposal(b *Block) {
	l.pendingBlocks[b.Hash()] = b
}

// BlockOfHash resolves a hash to a block: a committed entry, a pending
// proposal, or the canonical empty block for the next round.
func (l *Ledger) BlockOfHash(h crypto.Digest) (*Block, bool) {
	if e, ok := l.entries[h]; ok {
		return e.block, true
	}
	if b, ok := l.pendingBlocks[h]; ok {
		return b, true
	}
	return nil, false
}

// NextEmptyBlock returns the canonical empty block extending the head.
func (l *Ledger) NextEmptyBlock() *Block {
	return EmptyBlock(l.NextRound(), l.HeadHash(), l.PrevSeed(), l.head.block.StateRoot)
}

// ValidateBlock performs the §8.1 checks on a proposed block extending
// the head: round and previous-hash linkage, transaction validity
// against the head state, seed validity, and timestamp sanity. now is
// the validator's current (virtual) clock.
func (l *Ledger) ValidateBlock(b *Block, now time.Duration) error {
	if b.Round != l.NextRound() {
		return fmt.Errorf("ledger: block round %d, want %d", b.Round, l.NextRound())
	}
	if b.PrevHash != l.HeadHash() {
		return errors.New("ledger: block does not extend head")
	}
	if b.IsEmpty() {
		if b.Hash() != l.NextEmptyBlock().Hash() {
			return errors.New("ledger: non-canonical empty block")
		}
		return nil
	}
	// Timestamp: greater than predecessor's and approximately current.
	if b.Timestamp <= l.head.block.Timestamp && l.head != l.genesis {
		return errors.New("ledger: timestamp not increasing")
	}
	if b.Timestamp > now+l.cfg.MaxTimestampSkew {
		return errors.New("ledger: timestamp too far in the future")
	}
	// Seed: VRF_proposer(seed_{r-1} || r) hashed into the block seed.
	out, ok := l.provider.VRFVerify(b.Proposer, SeedAlpha(l.PrevSeed(), b.Round), b.SeedProof)
	if !ok || SeedFromVRF(out) != b.Seed {
		return errors.New("ledger: invalid block seed")
	}
	// Transactions must apply cleanly to a copy of the head state, and
	// the header's state root must commit exactly the resulting state.
	tmp := l.head.balances.Clone()
	for i := range b.Txns {
		tx := &b.Txns[i]
		if !tx.VerifySig(l.provider) {
			return fmt.Errorf("ledger: bad signature on tx %d", i)
		}
		if err := tmp.ApplyTx(tx); err != nil {
			return fmt.Errorf("ledger: tx %d: %w", i, err)
		}
	}
	if got := tmp.Root(); b.StateRoot != got {
		return fmt.Errorf("ledger: block state root %s, post-apply state is %s", b.StateRoot, got)
	}
	return nil
}

// Commit appends a block to the chain with its certificate. The block
// must extend a known entry (normally the head). If it extends a
// non-head entry, a fork is recorded; the head moves only if the block
// extends the current head.
func (l *Ledger) Commit(b *Block, cert *Certificate) error {
	h := b.Hash()
	if _, dup := l.entries[h]; dup {
		// Already known; attach a certificate the entry lacks (e.g. a
		// §8.2 recovery certificate for a block first seen uncertified)
		// or upgrade certificate finality.
		e := l.entries[h]
		if cert != nil && e.cert == nil {
			e.cert = cert
		}
		if cert != nil && cert.Final && !e.final {
			e.final = true
			e.cert = cert
			l.updateLastFinal()
		}
		return nil
	}
	parent, ok := l.entries[b.PrevHash]
	if !ok {
		return errors.New("ledger: commit with unknown parent")
	}
	if b.Round != parent.block.Round+1 {
		return fmt.Errorf("ledger: commit round %d after parent round %d", b.Round, parent.block.Round)
	}
	bal := parent.balances.Clone()
	for i := range b.Txns {
		if err := bal.ApplyTx(&b.Txns[i]); err != nil {
			return fmt.Errorf("ledger: commit tx %d: %w", i, err)
		}
	}
	if got := bal.Root(); b.StateRoot != got {
		return fmt.Errorf("ledger: commit state root %s, post-apply state is %s", b.StateRoot, got)
	}
	e := &entry{
		block:    b,
		hash:     h,
		parent:   parent,
		balances: bal,
		cert:     cert,
		final:    cert != nil && cert.Final,
	}
	l.entries[h] = e
	l.byRound[b.Round] = append(l.byRound[b.Round], e)
	delete(l.pendingBlocks, h)
	if parent == l.head {
		l.head = e
	}
	if e.final {
		l.updateLastFinal()
	}
	return nil
}

// updateLastFinal advances lastFinal to the deepest final entry on the
// head chain.
func (l *Ledger) updateLastFinal() {
	for e := l.head; e != nil; e = e.parent {
		if e.final {
			l.lastFinal = e
			return
		}
	}
}

// BalancesAt returns the account state after the block with the given
// hash, if known.
func (l *Ledger) BalancesAt(h crypto.Digest) (*Balances, bool) {
	e, ok := l.entries[h]
	if !ok {
		return nil, false
	}
	return e.balances, true
}

// Knows reports whether the block with the given hash is committed.
func (l *Ledger) Knows(h crypto.Digest) bool {
	_, ok := l.entries[h]
	return ok
}

// Certificate returns the stored certificate for a block hash.
func (l *Ledger) Certificate(h crypto.Digest) (*Certificate, bool) {
	e, ok := l.entries[h]
	if !ok || e.cert == nil {
		return nil, false
	}
	return e.cert, true
}

// ForkTips returns the tip of every known chain branch, longest first.
// Used by the §8.2 recovery protocol to propose a fork to converge on.
func (l *Ledger) ForkTips() []*Block {
	hasChild := make(map[crypto.Digest]bool, len(l.entries))
	for _, e := range l.entries {
		if e.parent != nil {
			hasChild[e.parent.hash] = true
		}
	}
	var tips []*Block
	for _, e := range l.entries {
		if !hasChild[e.hash] {
			tips = append(tips, e.block)
		}
	}
	// Longest (highest round) first; break ties by hash for determinism.
	for i := 0; i < len(tips); i++ {
		for j := i + 1; j < len(tips); j++ {
			if tips[j].Round > tips[i].Round ||
				(tips[j].Round == tips[i].Round && tips[i].Hash().Less(tips[j].Hash())) {
				tips[i], tips[j] = tips[j], tips[i]
			}
		}
	}
	return tips
}

// SwitchHead re-points the canonical chain at the entry with the given
// hash (fork recovery, §8.2). The entry must be known.
func (l *Ledger) SwitchHead(h crypto.Digest) error {
	e, ok := l.entries[h]
	if !ok {
		return errors.New("ledger: switch to unknown block")
	}
	l.head = e
	l.updateLastFinal()
	return nil
}

// ChainLength returns the head round (number of blocks after genesis).
func (l *Ledger) ChainLength() uint64 { return l.head.block.Round }

// BlockAt returns the canonical-chain block at the given round.
func (l *Ledger) BlockAt(round uint64) (*Block, bool) {
	e := ancestorAt(l.head, round)
	if e == nil {
		return nil, false
	}
	return e.block, true
}

// IsFinal reports whether the block at the given hash is final, or has
// a final successor on the head chain (transactions are confirmed when
// they appear in a final block or a predecessor of one, §8.2).
func (l *Ledger) IsFinal(h crypto.Digest) bool {
	e, ok := l.entries[h]
	if !ok {
		return false
	}
	return e.block.Round <= l.lastFinal.block.Round && ancestorAt(l.lastFinal, e.block.Round) == e
}
