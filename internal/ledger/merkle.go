package ledger

import (
	"encoding/binary"
	"sort"

	"algorand/internal/crypto"
)

// The account state commitment: an incremental Merkle tree over every
// account record (public key, money, nonce). Accounts hash into one of
// merkleBuckets leaves by key; a bucket's hash covers its members'
// record hashes in sorted key order; a fixed binary tree over the
// bucket hashes yields the tree root; and the state root additionally
// commits the total money supply W (sortition divides by it, so a
// state commitment that let W drift would be useless for verifying
// snapshots).
//
// Updating an account re-hashes only its bucket (expected n/merkleBuckets
// members) and the log₂(merkleBuckets) interior nodes above it, so the
// per-transaction cost stays far below re-hashing the account table —
// the property that lets every block header carry the root.

// merkleBuckets is the leaf width of the account tree. Power of two.
const merkleBuckets = 256

// accountLeafHash commits one account record.
func accountLeafHash(pk crypto.PublicKey, money, nonce uint64) crypto.Digest {
	var buf [16]byte
	binary.LittleEndian.PutUint64(buf[:8], money)
	binary.LittleEndian.PutUint64(buf[8:], nonce)
	return crypto.HashBytes("algorand.account", pk[:], buf[:])
}

// merkleBucketOf assigns an account to its leaf bucket.
func merkleBucketOf(pk crypto.PublicKey) int {
	h := crypto.HashBytes("algorand.account.bucket", pk[:])
	return int(binary.LittleEndian.Uint32(h[:4]) % merkleBuckets)
}

// accountTree is the incremental tree. nodes is a flat 1-indexed
// binary heap layout: nodes[1] is the tree root, the leaves (bucket
// hashes) occupy nodes[merkleBuckets..2*merkleBuckets-1].
type accountTree struct {
	members [merkleBuckets]map[crypto.PublicKey]crypto.Digest
	nodes   [2 * merkleBuckets]crypto.Digest
	dirty   map[int]bool // bucket indices needing a re-hash
}

func newAccountTree() *accountTree {
	return &accountTree{dirty: make(map[int]bool)}
}

// touch (re-)hashes one account record into the tree, or removes it
// when present is false.
func (t *accountTree) touch(pk crypto.PublicKey, money, nonce uint64, present bool) {
	i := merkleBucketOf(pk)
	if t.members[i] == nil {
		t.members[i] = make(map[crypto.PublicKey]crypto.Digest)
	}
	if present {
		t.members[i][pk] = accountLeafHash(pk, money, nonce)
	} else {
		delete(t.members[i], pk)
	}
	t.dirty[i] = true
}

func (t *accountTree) clone() *accountTree {
	c := &accountTree{nodes: t.nodes, dirty: make(map[int]bool, len(t.dirty))}
	for i, m := range t.members {
		if m == nil {
			continue
		}
		cm := make(map[crypto.PublicKey]crypto.Digest, len(m))
		for pk, h := range m {
			cm[pk] = h
		}
		c.members[i] = cm
	}
	for i := range t.dirty {
		c.dirty[i] = true
	}
	return c
}

// bucketHash commits bucket i: its members' record hashes in sorted
// order (the map iteration order must not leak into the commitment).
// An empty bucket commits to the zero digest.
func (t *accountTree) bucketHash(i int) crypto.Digest {
	m := t.members[i]
	if len(m) == 0 {
		return crypto.Digest{}
	}
	hs := make([]crypto.Digest, 0, len(m))
	for _, h := range m {
		hs = append(hs, h)
	}
	sort.Slice(hs, func(a, b int) bool { return hs[a].Less(hs[b]) })
	flat := make([]byte, 0, len(hs)*32)
	for _, h := range hs {
		flat = append(flat, h[:]...)
	}
	return crypto.HashBytes("algorand.account.leaf", flat)
}

// root recomputes the dirty paths and returns the tree root.
func (t *accountTree) root() crypto.Digest {
	if len(t.dirty) > 0 {
		parents := make(map[int]bool, len(t.dirty))
		for i := range t.dirty {
			t.nodes[merkleBuckets+i] = t.bucketHash(i)
			parents[(merkleBuckets+i)/2] = true
		}
		t.dirty = make(map[int]bool)
		for len(parents) > 0 {
			next := make(map[int]bool, len(parents))
			for n := range parents {
				t.nodes[n] = crypto.HashBytes("algorand.account.node",
					t.nodes[2*n][:], t.nodes[2*n+1][:])
				if n > 1 {
					next[n/2] = true
				}
			}
			parents = next
		}
	}
	return t.nodes[1]
}

// stateRoot is the block-header commitment: the account tree root plus
// the total money supply.
func stateRoot(total uint64, treeRoot crypto.Digest) crypto.Digest {
	return crypto.HashUint64("algorand.state", total, treeRoot[:])
}
