package ledger

import (
	"errors"
	"fmt"

	"algorand/internal/crypto"
	"algorand/internal/sortition"
	"algorand/internal/wire"
)

// Vote is a committee member's signed BA⋆ message (Algorithm 4):
// Signed_sk(round, step, sorthash, π, H(last_block), value), carried by
// the gossip network and aggregated into certificates.
type Vote struct {
	Sender    crypto.PublicKey
	Round     uint64
	Step      uint64
	SortHash  crypto.VRFOutput
	SortProof []byte
	PrevHash  crypto.Digest
	Value     crypto.Digest
	Sig       []byte
}

// voteFixedSize is the size of a vote's fixed fields: sender key,
// round, step, VRF output, two digests, plus the two u32 length
// prefixes for proof and signature.
const voteFixedSize = 32 + 8 + 8 + 64 + 4 + 32 + 32 + 4

// VoteWireSize is the canonical wire size of a standard vote (80-byte
// ECVRF sortition proof, 64-byte Ed25519 signature). About 300 bytes —
// the paper's "small message" class. Asserted equal to len(wire.Encode)
// by the universal round-trip test.
const VoteWireSize = voteFixedSize + 80 + 64

// encodeSigned appends the fields covered by the signature — every
// field but the signature itself, in wire order, so the signing bytes
// are a strict prefix of the canonical encoding.
func (v *Vote) encodeSigned(e *wire.Encoder) {
	e.Fixed(v.Sender[:])
	e.Uint64(v.Round)
	e.Uint64(v.Step)
	e.Fixed(v.SortHash[:])
	e.Bytes(v.SortProof)
	e.Fixed(v.PrevHash[:])
	e.Fixed(v.Value[:])
}

// EncodeTo implements wire.Marshaler.
func (v *Vote) EncodeTo(e *wire.Encoder) {
	v.encodeSigned(e)
	e.Bytes(v.Sig)
}

// DecodeFrom implements wire.Unmarshaler.
func (v *Vote) DecodeFrom(d *wire.Decoder) {
	d.Fixed(v.Sender[:])
	v.Round = d.Uint64()
	v.Step = d.Uint64()
	d.Fixed(v.SortHash[:])
	v.SortProof = d.Bytes()
	d.Fixed(v.PrevHash[:])
	d.Fixed(v.Value[:])
	v.Sig = d.Bytes()
}

// WireSize returns the vote's canonical encoded size.
func (v *Vote) WireSize() int {
	return voteFixedSize + len(v.SortProof) + len(v.Sig)
}

// SigningBytes returns the canonical encoding covered by the signature.
func (v *Vote) SigningBytes() []byte {
	e := wire.NewEncoderSize(VoteWireSize)
	v.encodeSigned(e)
	return e.Data()
}

// Sign fills in the signature.
func (v *Vote) Sign(id crypto.Identity) {
	v.Sig = id.Sign(v.SigningBytes())
}

// Certificate proves that BA⋆ committed Value in Round: an aggregate of
// more than threshold committee votes from one step (§8.3). Final
// certificates come from the final step and prove safety; tentative
// ones come from the last BinaryBA⋆ step and prove the consensus value.
type Certificate struct {
	Round uint64
	Step  uint64
	Value crypto.Digest
	Final bool
	Votes []Vote
}

// certOverheadSize is the certificate's encoded size beyond its votes:
// round, step, value, final flag, and the u32 vote count.
const certOverheadSize = 8 + 8 + 32 + 1 + 4

// CertWireSize returns the canonical size of a certificate carrying n
// standard votes (for analytic sizing, e.g. the §10.3 storage numbers).
func CertWireSize(n int) int { return certOverheadSize + n*VoteWireSize }

// WireSize returns the certificate's serialized size in bytes. With the
// paper's parameters (τ_step=2000, T=0.685, ~1370 votes needed) this
// comes to roughly 300 KBytes, matching §10.3.
func (c *Certificate) WireSize() int {
	total := certOverheadSize
	for i := range c.Votes {
		total += c.Votes[i].WireSize()
	}
	return total
}

// EncodeTo implements wire.Marshaler.
func (c *Certificate) EncodeTo(e *wire.Encoder) {
	e.Uint64(c.Round)
	e.Uint64(c.Step)
	e.Fixed(c.Value[:])
	e.Bool(c.Final)
	e.Int(len(c.Votes))
	for i := range c.Votes {
		c.Votes[i].EncodeTo(e)
	}
}

// DecodeFrom implements wire.Unmarshaler.
func (c *Certificate) DecodeFrom(d *wire.Decoder) {
	c.Round = d.Uint64()
	c.Step = d.Uint64()
	d.Fixed(c.Value[:])
	c.Final = d.Bool()
	n := d.Count(voteFixedSize)
	if n == 0 {
		c.Votes = nil
		return
	}
	c.Votes = make([]Vote, n)
	for i := range c.Votes {
		c.Votes[i].DecodeFrom(d)
	}
}

// Verify checks the certificate under the committee configuration of
// its round: every vote must be validly signed, carry a valid sortition
// proof for (seed, role committee/round/step), vote for c.Value chained
// to prevHash, and senders must be distinct; the verified sub-user vote
// weights must exceed threshold (⌊T·τ⌋, so "more than" per the paper).
func (c *Certificate) Verify(
	p crypto.Provider,
	seed crypto.Digest,
	weights map[crypto.PublicKey]uint64,
	totalWeight uint64,
	tau uint64,
	threshold uint64,
	prevHash crypto.Digest,
) error {
	if len(c.Votes) == 0 {
		return errors.New("ledger: empty certificate")
	}
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: c.Round, Step: c.Step}
	seen := make(map[crypto.PublicKey]bool, len(c.Votes))
	var votes uint64
	for i := range c.Votes {
		v := &c.Votes[i]
		if v.Round != c.Round || v.Step != c.Step {
			return fmt.Errorf("ledger: vote %d for wrong round/step", i)
		}
		if v.Value != c.Value {
			return fmt.Errorf("ledger: vote %d for wrong value", i)
		}
		if v.PrevHash != prevHash {
			return fmt.Errorf("ledger: vote %d extends wrong chain", i)
		}
		if seen[v.Sender] {
			return fmt.Errorf("ledger: duplicate voter %v", v.Sender)
		}
		seen[v.Sender] = true
		if !p.VerifySig(v.Sender, v.SigningBytes(), v.Sig) {
			return fmt.Errorf("ledger: bad signature from %v", v.Sender)
		}
		out, j := sortition.Verify(p, v.Sender, v.SortProof, seed[:], role,
			tau, weights[v.Sender], totalWeight)
		if j == 0 {
			return fmt.Errorf("ledger: voter %v not selected", v.Sender)
		}
		if out != v.SortHash {
			return fmt.Errorf("ledger: voter %v sortition hash mismatch", v.Sender)
		}
		votes += j
	}
	if votes <= threshold {
		return fmt.Errorf("ledger: certificate has %d votes, need > %d", votes, threshold)
	}
	return nil
}
