package ledger

import (
	"encoding/binary"
	"errors"
	"fmt"

	"algorand/internal/crypto"
	"algorand/internal/sortition"
)

// Vote is a committee member's signed BA⋆ message (Algorithm 4):
// Signed_sk(round, step, sorthash, π, H(last_block), value), carried by
// the gossip network and aggregated into certificates.
type Vote struct {
	Sender    crypto.PublicKey
	Round     uint64
	Step      uint64
	SortHash  crypto.VRFOutput
	SortProof []byte
	PrevHash  crypto.Digest
	Value     crypto.Digest
	Sig       []byte
}

// VoteWireSize is a vote's serialized size: sender key, round, step,
// VRF output and proof, two digests and a signature. About 300 bytes —
// the paper's "small message" class.
const VoteWireSize = 32 + 8 + 8 + 64 + 80 + 32 + 32 + 64

// SigningBytes returns the canonical encoding covered by the signature.
func (v *Vote) SigningBytes() []byte {
	buf := make([]byte, 0, VoteWireSize)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], v.Round)
	buf = append(buf, tmp[:]...)
	binary.LittleEndian.PutUint64(tmp[:], v.Step)
	buf = append(buf, tmp[:]...)
	buf = append(buf, v.SortHash[:]...)
	buf = append(buf, byte(len(v.SortProof)))
	buf = append(buf, v.SortProof...)
	buf = append(buf, v.PrevHash[:]...)
	buf = append(buf, v.Value[:]...)
	return buf
}

// Sign fills in the signature.
func (v *Vote) Sign(id crypto.Identity) {
	v.Sig = id.Sign(v.SigningBytes())
}

// Certificate proves that BA⋆ committed Value in Round: an aggregate of
// more than threshold committee votes from one step (§8.3). Final
// certificates come from the final step and prove safety; tentative
// ones come from the last BinaryBA⋆ step and prove the consensus value.
type Certificate struct {
	Round uint64
	Step  uint64
	Value crypto.Digest
	Final bool
	Votes []Vote
}

// WireSize returns the certificate's serialized size in bytes. With the
// paper's parameters (τ_step=2000, T=0.685, ~1370 votes needed) this
// comes to roughly 300 KBytes, matching §10.3.
func (c *Certificate) WireSize() int {
	return 8 + 8 + 32 + 1 + len(c.Votes)*VoteWireSize
}

// Verify checks the certificate under the committee configuration of
// its round: every vote must be validly signed, carry a valid sortition
// proof for (seed, role committee/round/step), vote for c.Value chained
// to prevHash, and senders must be distinct; the verified sub-user vote
// weights must exceed threshold (⌊T·τ⌋, so "more than" per the paper).
func (c *Certificate) Verify(
	p crypto.Provider,
	seed crypto.Digest,
	weights map[crypto.PublicKey]uint64,
	totalWeight uint64,
	tau uint64,
	threshold uint64,
	prevHash crypto.Digest,
) error {
	if len(c.Votes) == 0 {
		return errors.New("ledger: empty certificate")
	}
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: c.Round, Step: c.Step}
	seen := make(map[crypto.PublicKey]bool, len(c.Votes))
	var votes uint64
	for i := range c.Votes {
		v := &c.Votes[i]
		if v.Round != c.Round || v.Step != c.Step {
			return fmt.Errorf("ledger: vote %d for wrong round/step", i)
		}
		if v.Value != c.Value {
			return fmt.Errorf("ledger: vote %d for wrong value", i)
		}
		if v.PrevHash != prevHash {
			return fmt.Errorf("ledger: vote %d extends wrong chain", i)
		}
		if seen[v.Sender] {
			return fmt.Errorf("ledger: duplicate voter %v", v.Sender)
		}
		seen[v.Sender] = true
		if !p.VerifySig(v.Sender, v.SigningBytes(), v.Sig) {
			return fmt.Errorf("ledger: bad signature from %v", v.Sender)
		}
		out, j := sortition.Verify(p, v.Sender, v.SortProof, seed[:], role,
			tau, weights[v.Sender], totalWeight)
		if j == 0 {
			return fmt.Errorf("ledger: voter %v not selected", v.Sender)
		}
		if out != v.SortHash {
			return fmt.Errorf("ledger: voter %v sortition hash mismatch", v.Sender)
		}
		votes += j
	}
	if votes <= threshold {
		return fmt.Errorf("ledger: certificate has %d votes, need > %d", votes, threshold)
	}
	return nil
}
