package ledger

import (
	"fmt"
	"sort"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/wire"
)

// Store is a user's block/certificate archive with §8.3 sharding: for a
// shard count N, the user persists blocks and certificates whose round
// number is congruent to their shard index mod N. Bytes tracks storage
// cost for the §10.3 accounting.
type Store struct {
	ShardIndex uint64
	ShardCount uint64

	blocks map[uint64]*Block
	certs  map[uint64]*Certificate
	// Bytes is the total wire size of everything persisted.
	Bytes int64
}

// NewStore creates a store. shardCount == 1 keeps everything.
func NewStore(shardIndex, shardCount uint64) *Store {
	if shardCount == 0 {
		shardCount = 1
	}
	return &Store{
		ShardIndex: shardIndex % shardCount,
		ShardCount: shardCount,
		blocks:     make(map[uint64]*Block),
		certs:      make(map[uint64]*Certificate),
	}
}

// responsible reports whether this store shards the given round.
func (s *Store) responsible(round uint64) bool {
	return round%s.ShardCount == s.ShardIndex
}

// Put archives a block and its certificate if this shard covers the
// round, returning whether it was stored.
func (s *Store) Put(b *Block, c *Certificate) bool {
	if !s.responsible(b.Round) {
		return false
	}
	if _, dup := s.blocks[b.Round]; !dup {
		s.blocks[b.Round] = b
		s.Bytes += int64(b.WireSize())
	}
	if c != nil {
		prev, dup := s.certs[b.Round]
		if !dup {
			s.certs[b.Round] = c
			s.Bytes += int64(c.WireSize())
		} else if c.Final && !prev.Final {
			// Pipelined finality upgrade: replace the tentative cert.
			s.Bytes += int64(c.WireSize()) - int64(prev.WireSize())
			s.certs[b.Round] = c
		}
	}
	return true
}

// Reconcile forces the archive to the canonical block for a round,
// replacing whatever was stored — used after §8.2 fork recovery, when
// the block this node originally archived for a round may belong to an
// abandoned fork. A nil certificate erases any stored one (recovery
// adoptions have no certificate of their own).
func (s *Store) Reconcile(b *Block, c *Certificate) {
	if !s.responsible(b.Round) {
		return
	}
	if prev, ok := s.blocks[b.Round]; ok {
		if prev.Hash() == b.Hash() {
			if c != nil {
				s.Put(b, c)
			}
			return
		}
		s.Bytes -= int64(prev.WireSize())
	}
	s.blocks[b.Round] = b
	s.Bytes += int64(b.WireSize())
	if prev, ok := s.certs[b.Round]; ok {
		s.Bytes -= int64(prev.WireSize())
		delete(s.certs, b.Round)
	}
	if c != nil {
		s.certs[b.Round] = c
		s.Bytes += int64(c.WireSize())
	}
}

// Block returns the stored block for a round.
func (s *Store) Block(round uint64) (*Block, bool) {
	b, ok := s.blocks[round]
	return b, ok
}

// Cert returns the stored certificate for a round.
func (s *Store) Cert(round uint64) (*Certificate, bool) {
	c, ok := s.certs[round]
	return c, ok
}

// Rounds returns how many rounds are archived.
func (s *Store) Rounds() int { return len(s.blocks) }

// EncodeTo implements wire.Marshaler: a deterministic snapshot of the
// archive (shard configuration plus every stored round in ascending
// order), suitable for persisting a shard to disk or shipping it to a
// bootstrapping peer.
func (s *Store) EncodeTo(e *wire.Encoder) {
	e.Uint64(s.ShardIndex)
	e.Uint64(s.ShardCount)
	rounds := make([]uint64, 0, len(s.blocks))
	for r := range s.blocks {
		rounds = append(rounds, r)
	}
	sort.Slice(rounds, func(i, j int) bool { return rounds[i] < rounds[j] })
	e.Int(len(rounds))
	for _, r := range rounds {
		e.Uint64(r)
		s.blocks[r].EncodeTo(e)
		c, ok := s.certs[r]
		e.Bool(ok)
		if ok {
			c.EncodeTo(e)
		}
	}
}

// DecodeFrom implements wire.Unmarshaler, rebuilding the archive and
// its storage accounting from a snapshot.
func (s *Store) DecodeFrom(d *wire.Decoder) {
	s.ShardIndex = d.Uint64()
	s.ShardCount = d.Uint64()
	if s.ShardCount == 0 {
		s.ShardCount = 1
	}
	n := d.Count(8 + blockFixedSize + 1)
	s.blocks = make(map[uint64]*Block, n)
	s.certs = make(map[uint64]*Certificate, n)
	s.Bytes = 0
	for i := 0; i < n; i++ {
		r := d.Uint64()
		b := new(Block)
		b.DecodeFrom(d)
		if d.Err() != nil {
			return
		}
		s.blocks[r] = b
		s.Bytes += int64(b.WireSize())
		if d.Bool() {
			c := new(Certificate)
			c.DecodeFrom(d)
			if d.Err() != nil {
				return
			}
			s.certs[r] = c
			s.Bytes += int64(c.WireSize())
		}
	}
}

// CommitteeParams captures what certificate verification needs to know
// about committee sizing for a step.
type CommitteeParams struct {
	TauStep        uint64
	StepThreshold  uint64
	TauFinal       uint64
	FinalThreshold uint64
	// MaxStep bounds the step number a certificate may claim (0 = no
	// bound). §8.3: an adversary could otherwise search an unbounded
	// number of step numbers for one where it controls the committee
	// by chance; honest certificates never exceed the wire step of
	// BinaryBA⋆'s MaxSteps.
	MaxStep uint64
}

// CatchUp bootstraps a new user (§8.3): given the genesis configuration
// and the chain of blocks with certificates, it validates everything in
// order — certificates against the sortition seeds and weights of each
// round, blocks against the evolving state — and returns a ledger at
// the resulting head. This is exactly what a user joining the system
// runs, and it requires no trust in whoever supplied the blocks.
func CatchUp(
	p crypto.Provider,
	cfg Config,
	genesisAccounts map[crypto.PublicKey]uint64,
	seed0 crypto.Digest,
	blocks []*Block,
	certs []*Certificate,
	cp CommitteeParams,
) (*Ledger, error) {
	if len(blocks) != len(certs) {
		return nil, fmt.Errorf("ledger: %d blocks but %d certificates", len(blocks), len(certs))
	}
	l := New(p, cfg, genesisAccounts, seed0)
	for i, b := range blocks {
		cert := certs[i]
		if cert == nil {
			return nil, fmt.Errorf("ledger: round %d missing certificate", b.Round)
		}
		if cert.Value != b.Hash() {
			return nil, fmt.Errorf("ledger: round %d certificate is for a different block", b.Round)
		}
		seed := l.SortitionSeed(b.Round)
		weights, total := l.SortitionWeights(b.Round)
		tau, threshold := cp.TauStep, cp.StepThreshold
		if cert.Final {
			tau, threshold = cp.TauFinal, cp.FinalThreshold
		} else if cp.MaxStep != 0 && cert.Step > cp.MaxStep {
			return nil, fmt.Errorf("ledger: round %d certificate claims step %d beyond bound %d",
				b.Round, cert.Step, cp.MaxStep)
		}
		if err := cert.Verify(p, seed, weights, total, tau, threshold, l.HeadHash()); err != nil {
			return nil, fmt.Errorf("ledger: round %d certificate invalid: %w", b.Round, err)
		}
		// Blocks validate with timestamp checks relaxed: the catch-up
		// user was not present when the block was made, so only ordering
		// is checked (now = block time).
		if err := l.ValidateBlock(b, b.Timestamp+time.Hour); err != nil {
			return nil, fmt.Errorf("ledger: round %d block invalid: %w", b.Round, err)
		}
		if err := l.Commit(b, cert); err != nil {
			return nil, fmt.Errorf("ledger: round %d commit: %w", b.Round, err)
		}
	}
	return l, nil
}
