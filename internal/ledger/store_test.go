package ledger

import (
	"testing"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/wire"
)

// storeBlock builds a distinct block for a round; vary pad to get
// distinct hashes (and wire sizes) for the same round.
func storeBlock(round uint64, pad int) *Block {
	return &Block{
		Round:          round,
		PrevHash:       crypto.HashBytes("store-test", []byte{byte(round)}),
		Timestamp:      time.Duration(round),
		PayloadPadding: pad,
	}
}

func storeCert(b *Block, final bool) *Certificate {
	return &Certificate{
		Round: b.Round,
		Step:  1,
		Value: b.Hash(),
		Final: final,
		Votes: []Vote{{Round: b.Round, Step: 1, Value: b.Hash()}},
	}
}

// auditBytes recomputes the store's Bytes from scratch and demands the
// running total matches — every mutation path must keep the §10.3
// storage accounting exact.
func auditBytes(t *testing.T, s *Store, rounds ...uint64) {
	t.Helper()
	var want int64
	for _, r := range rounds {
		if b, ok := s.Block(r); ok {
			want += int64(b.WireSize())
		}
		if c, ok := s.Cert(r); ok {
			want += int64(c.WireSize())
		}
	}
	if s.Bytes != want {
		t.Fatalf("Bytes = %d, recomputed %d", s.Bytes, want)
	}
}

// TestReconcileReplacesAbandonedFork is the §8.2 path: after fork
// recovery the archived block for a round may belong to an abandoned
// branch; Reconcile must swap in the canonical block, drop the stale
// certificate, and keep the byte accounting exact.
func TestReconcileReplacesAbandonedFork(t *testing.T) {
	s := NewStore(0, 1)
	forked := storeBlock(1, 64)
	s.Put(forked, storeCert(forked, false))
	auditBytes(t, s, 1)

	canonical := storeBlock(1, 256)
	cert := storeCert(canonical, true)
	s.Reconcile(canonical, cert)

	got, ok := s.Block(1)
	if !ok || got.Hash() != canonical.Hash() {
		t.Fatal("canonical block did not replace the fork's")
	}
	c, ok := s.Cert(1)
	if !ok || c.Value != canonical.Hash() || !c.Final {
		t.Fatal("canonical certificate not stored")
	}
	auditBytes(t, s, 1)
}

// TestReconcileNilCertErases: recovery adoptions carry no certificate
// of their own, so reconciling with nil must erase the stale cert (it
// certifies a block no longer in the archive) and refund its bytes.
func TestReconcileNilCertErases(t *testing.T) {
	s := NewStore(0, 1)
	forked := storeBlock(2, 64)
	s.Put(forked, storeCert(forked, false))

	adopted := storeBlock(2, 0)
	s.Reconcile(adopted, nil)
	if _, ok := s.Cert(2); ok {
		t.Fatal("stale certificate survived a nil-cert reconcile")
	}
	if got, ok := s.Block(2); !ok || got.Hash() != adopted.Hash() {
		t.Fatal("adopted block not stored")
	}
	auditBytes(t, s, 2)
}

// TestReconcileSameBlockUpgradesCert: when the archived block already
// is the canonical one, Reconcile degrades to Put — a tentative cert
// upgrades to final (accounting for the size delta), a nil cert is a
// pure no-op, and a downgrade back to tentative is refused.
func TestReconcileSameBlockUpgradesCert(t *testing.T) {
	s := NewStore(0, 1)
	b := storeBlock(3, 64)
	tent := storeCert(b, false)
	s.Put(b, tent)

	before := s.Bytes
	s.Reconcile(b, nil) // same block, no cert: nothing changes
	if s.Bytes != before {
		t.Fatalf("no-op reconcile moved Bytes %d → %d", before, s.Bytes)
	}
	if c, _ := s.Cert(3); c.Final {
		t.Fatal("no-op reconcile changed the certificate")
	}

	final := storeCert(b, true)
	final.Votes = append(final.Votes, Vote{Round: 3, Step: 1, Value: b.Hash()})
	s.Reconcile(b, final)
	if c, _ := s.Cert(3); !c.Final {
		t.Fatal("tentative certificate not upgraded to final")
	}
	auditBytes(t, s, 3)

	s.Reconcile(b, tent) // downgrade attempt
	if c, _ := s.Cert(3); !c.Final {
		t.Fatal("final certificate downgraded to tentative")
	}
	auditBytes(t, s, 3)
}

// TestReconcileRespectsShard: a round outside this shard's residue
// class is ignored entirely (§8.3 sharding).
func TestReconcileRespectsShard(t *testing.T) {
	s := NewStore(1, 3) // responsible for rounds ≡ 1 (mod 3)
	b := storeBlock(2, 0)
	s.Reconcile(b, storeCert(b, true))
	if s.Rounds() != 0 || s.Bytes != 0 {
		t.Fatalf("shard 1/3 stored round 2 (rounds=%d bytes=%d)", s.Rounds(), s.Bytes)
	}

	mine := storeBlock(4, 0)
	s.Reconcile(mine, nil)
	if _, ok := s.Block(4); !ok {
		t.Fatal("shard 1/3 refused its own round 4")
	}
	auditBytes(t, s, 4)
}

// TestStoreSnapshotAfterReconcile: the wire snapshot round-trips the
// reconciled archive, and the decoder rebuilds the same Bytes total the
// mutations maintained incrementally.
func TestStoreSnapshotAfterReconcile(t *testing.T) {
	s := NewStore(0, 1)
	for r := uint64(1); r <= 3; r++ {
		b := storeBlock(r, int(r)*32)
		s.Put(b, storeCert(b, false))
	}
	repl := storeBlock(2, 512)
	s.Reconcile(repl, nil)

	var out Store
	if err := wire.Decode(wire.Encode(s), &out); err != nil {
		t.Fatal(err)
	}
	if out.Rounds() != 3 || out.Bytes != s.Bytes {
		t.Fatalf("round trip: rounds=%d bytes=%d, want rounds=3 bytes=%d",
			out.Rounds(), out.Bytes, s.Bytes)
	}
	if _, ok := out.Cert(2); ok {
		t.Fatal("erased certificate reappeared after the round trip")
	}
	if b, _ := out.Block(2); b.Hash() != repl.Hash() {
		t.Fatal("reconciled block lost in the round trip")
	}
}
