package ledger

import (
	"bytes"
	"testing"

	"algorand/internal/crypto"
	"algorand/internal/wire"
)

// testCheckpoint builds a structurally valid checkpoint at the given
// round: n accounts with varied money/nonces, a block whose StateRoot
// commits exactly that table, and a (cryptographically fake) cert for
// the block. diskstore and the snapshot wire format only need the
// structural invariants; certificate validity is the node's job.
func testCheckpoint(round uint64, n int) *Checkpoint {
	bal := &Balances{
		Money: make(map[crypto.PublicKey]uint64),
		Nonce: make(map[crypto.PublicKey]uint64),
	}
	for i := 0; i < n; i++ {
		pk := crypto.PublicKey(crypto.HashUint64("test.checkpoint.key", uint64(i), nil))
		bal.Money[pk] = uint64(1000 + i)
		bal.Total += uint64(1000 + i)
		if i%3 == 0 {
			bal.Nonce[pk] = uint64(i + 1)
		}
	}
	b := &Block{
		Round:     round,
		PrevHash:  crypto.HashUint64("test.checkpoint.prev", round, nil),
		Seed:      crypto.HashUint64("test.checkpoint.seed", round, nil),
		StateRoot: bal.Root(),
	}
	c := &Certificate{
		Round: round,
		Step:  3,
		Value: b.Hash(),
		Votes: []Vote{{Round: round, Step: 3, Value: b.Hash()}},
	}
	return CheckpointOf(b, c, bal)
}

func TestCheckpointRoundTrip(t *testing.T) {
	cp := testCheckpoint(7, 13)
	bal, err := cp.VerifyState()
	if err != nil {
		t.Fatalf("fresh checkpoint fails VerifyState: %v", err)
	}
	data := wire.Encode(cp)
	if len(data) != cp.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", len(data), cp.WireSize())
	}

	var got Checkpoint
	if err := wire.Decode(data, &got); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Round() != 7 || got.Block.Hash() != cp.Block.Hash() {
		t.Fatal("decoded checkpoint has a different block")
	}
	gotBal, err := got.VerifyState()
	if err != nil {
		t.Fatalf("decoded checkpoint fails VerifyState: %v", err)
	}
	if gotBal.Total != bal.Total || gotBal.Root() != bal.Root() {
		t.Fatal("decoded balances differ from original")
	}
	for pk, m := range bal.Money {
		if gotBal.Money[pk] != m {
			t.Fatalf("account %x money %d, want %d", pk[:4], gotBal.Money[pk], m)
		}
	}
	for pk, nn := range bal.Nonce {
		if gotBal.Nonce[pk] != nn {
			t.Fatalf("account %x nonce %d, want %d", pk[:4], gotBal.Nonce[pk], nn)
		}
	}
	if !bytes.Equal(wire.Encode(&got), data) {
		t.Fatal("re-encoding is not byte-identical")
	}
}

// TestCheckpointCanonicalOrder: the account table has exactly one
// legal byte-form — unsorted or duplicated keys are rejected at
// decode, so a peer cannot serve the same state twice under different
// encodings.
func TestCheckpointCanonicalOrder(t *testing.T) {
	cp := testCheckpoint(3, 6)
	if len(cp.Accounts) < 2 {
		t.Fatal("need at least two accounts")
	}

	swapped := *cp
	swapped.Accounts = append([]AccountRecord(nil), cp.Accounts...)
	swapped.Accounts[0], swapped.Accounts[1] = swapped.Accounts[1], swapped.Accounts[0]
	if err := wire.Decode(wire.Encode(&swapped), new(Checkpoint)); err == nil {
		t.Fatal("unsorted account table decoded")
	}

	dup := *cp
	dup.Accounts = append([]AccountRecord(nil), cp.Accounts...)
	dup.Accounts[1] = dup.Accounts[0]
	if err := wire.Decode(wire.Encode(&dup), new(Checkpoint)); err == nil {
		t.Fatal("duplicate account key decoded")
	}
}

func TestCheckpointVerifyStateRejectsTamper(t *testing.T) {
	check := func(name string, mutate func(cp *Checkpoint)) {
		cp := testCheckpoint(5, 8)
		mutate(cp)
		if _, err := cp.VerifyState(); err == nil {
			t.Fatalf("%s: VerifyState accepted a tampered checkpoint", name)
		}
	}
	check("inflated balance", func(cp *Checkpoint) { cp.Accounts[0].Money += 1 })
	check("edited nonce", func(cp *Checkpoint) { cp.Accounts[2].Nonce += 1 })
	check("dropped account", func(cp *Checkpoint) { cp.Accounts = cp.Accounts[1:] })
	check("wrong state root", func(cp *Checkpoint) {
		cp.Block.StateRoot = crypto.HashBytes("test.evil", nil)
	})
	check("cert for another block", func(cp *Checkpoint) {
		cp.Cert.Value = crypto.HashBytes("test.other", nil)
	})
	check("no cert", func(cp *Checkpoint) { cp.Cert = nil })
	check("no block", func(cp *Checkpoint) { cp.Block = nil })
}

// TestCheckpointOfMatchesLiveState: a checkpoint of a live ledger's
// balances verifies against that ledger's own head block.
func TestCheckpointOfMatchesLiveState(t *testing.T) {
	prov := crypto.NewFast()
	genesis := make(map[crypto.PublicKey]uint64)
	for i := 0; i < 4; i++ {
		id := prov.NewIdentity(crypto.SeedFromUint64(uint64(i)))
		genesis[id.PublicKey()] = 1000
	}
	l := New(prov, DefaultConfig(), genesis, crypto.HashBytes("test.seed0", nil))
	cert := &Certificate{Round: 0, Value: l.HeadHash()}
	cp := CheckpointOf(l.Head(), cert, l.Balances())
	if _, err := cp.VerifyState(); err != nil {
		t.Fatalf("checkpoint of live genesis state fails verification: %v", err)
	}
	if cp.Round() != 0 || len(cp.Accounts) != 4 {
		t.Fatalf("round %d, %d accounts", cp.Round(), len(cp.Accounts))
	}
}
