// Package ledger implements Algorand's transaction log: payments,
// blocks (§8.1), the seed chain that drives sortition (§5.2-5.3),
// account/weight tracking, block certificates, and the sharded
// block/certificate store (§8.3).
package ledger

import (
	"errors"
	"fmt"

	"algorand/internal/crypto"
	"algorand/internal/wire"
)

// Transaction is a payment signed by the sender's key, transferring
// money from one public key to another (§4). Nonce is the sender's
// per-account sequence number and provides replay protection. Fee is
// burned from the sender's balance on commit and orders transactions
// in the mempool (highest fee drains first; zero-fee transactions
// remain valid and sort last).
type Transaction struct {
	From   crypto.PublicKey
	To     crypto.PublicKey
	Amount uint64
	Fee    uint64
	Nonce  uint64
	Sig    []byte
}

// txSignedSize is the size of the signed core (two keys, amount, fee,
// nonce); the canonical encoding appends the length-prefixed signature.
const txSignedSize = 32 + 32 + 8 + 8 + 8

// TxWireSize is the canonical wire size of a signed transaction
// (signed core plus length-prefixed 64-byte Ed25519 signature), used
// for block-size accounting. Asserted equal to len(wire.Encode) by the
// universal round-trip test.
const TxWireSize = txSignedSize + 4 + 64

// TxMinWireSize is the smallest possible encoding (unsigned), the
// per-element bound used when decoding transaction batches from
// untrusted peers.
const TxMinWireSize = txSignedSize + 4

// encodeSigned appends the fields covered by the signature.
func (tx *Transaction) encodeSigned(e *wire.Encoder) {
	e.Fixed(tx.From[:])
	e.Fixed(tx.To[:])
	e.Uint64(tx.Amount)
	e.Uint64(tx.Fee)
	e.Uint64(tx.Nonce)
}

// EncodeTo implements wire.Marshaler: the signed core followed by the
// length-prefixed signature, so SigningBytes is a strict prefix of the
// wire encoding.
func (tx *Transaction) EncodeTo(e *wire.Encoder) {
	tx.encodeSigned(e)
	e.Bytes(tx.Sig)
}

// DecodeFrom implements wire.Unmarshaler.
func (tx *Transaction) DecodeFrom(d *wire.Decoder) {
	d.Fixed(tx.From[:])
	d.Fixed(tx.To[:])
	tx.Amount = d.Uint64()
	tx.Fee = d.Uint64()
	tx.Nonce = d.Uint64()
	tx.Sig = d.Bytes()
}

// WireSize returns the transaction's canonical encoded size.
func (tx *Transaction) WireSize() int {
	return txSignedSize + 4 + len(tx.Sig)
}

// SigningBytes returns the canonical byte encoding that is signed: the
// prefix of the wire encoding before the signature field.
func (tx *Transaction) SigningBytes() []byte {
	e := wire.NewEncoderSize(txSignedSize)
	tx.encodeSigned(e)
	return e.Data()
}

// ID returns the transaction's unique identifier.
func (tx *Transaction) ID() crypto.Digest {
	return crypto.HashBytes("algorand.tx", tx.SigningBytes())
}

// Sign fills in the signature using the sender's identity.
func (tx *Transaction) Sign(id crypto.Identity) {
	tx.Sig = id.Sign(tx.SigningBytes())
}

// VerifySig checks the transaction signature.
func (tx *Transaction) VerifySig(p crypto.Provider) bool {
	return p.VerifySig(tx.From, tx.SigningBytes(), tx.Sig)
}

// Balances tracks every account's money and per-account nonces. The
// total money supply W is maintained incrementally because sortition
// divides by it constantly, and the Merkle account tree is maintained
// incrementally because every block header commits to its root.
type Balances struct {
	Money map[crypto.PublicKey]uint64
	Nonce map[crypto.PublicKey]uint64
	Total uint64

	tree *accountTree
}

// NewBalances builds the genesis account state.
func NewBalances(initial map[crypto.PublicKey]uint64) *Balances {
	b := &Balances{
		Money: make(map[crypto.PublicKey]uint64, len(initial)),
		Nonce: make(map[crypto.PublicKey]uint64, len(initial)),
		tree:  newAccountTree(),
	}
	for pk, amt := range initial {
		b.Money[pk] = amt
		b.Total += amt
		b.tree.touch(pk, amt, 0, true)
	}
	return b
}

// Clone returns a deep copy, used for per-round weight snapshots.
func (b *Balances) Clone() *Balances {
	c := &Balances{
		Money: make(map[crypto.PublicKey]uint64, len(b.Money)),
		Nonce: make(map[crypto.PublicKey]uint64, len(b.Nonce)),
		Total: b.Total,
	}
	for pk, amt := range b.Money {
		c.Money[pk] = amt
	}
	for pk, n := range b.Nonce {
		c.Nonce[pk] = n
	}
	if b.tree != nil {
		c.tree = b.tree.clone()
	}
	return c
}

// ensureTree rebuilds the account tree from the maps when the Balances
// was assembled field-by-field rather than through NewBalances.
func (b *Balances) ensureTree() *accountTree {
	if b.tree == nil {
		t := newAccountTree()
		for pk, amt := range b.Money {
			t.touch(pk, amt, b.Nonce[pk], true)
		}
		for pk, n := range b.Nonce {
			if _, ok := b.Money[pk]; !ok {
				t.touch(pk, 0, n, true)
			}
		}
		b.tree = t
	}
	return b.tree
}

// Root returns the state commitment every block header carries: the
// Merkle root over all account records plus the total supply W.
func (b *Balances) Root() crypto.Digest {
	return stateRoot(b.Total, b.ensureTree().root())
}

// Weight returns the sortition weight (account balance) of pk.
func (b *Balances) Weight(pk crypto.PublicKey) uint64 {
	return b.Money[pk]
}

// CheckTx validates tx against the current state without applying it.
func (b *Balances) CheckTx(tx *Transaction) error {
	if tx.Amount == 0 {
		return errors.New("ledger: zero-amount transaction")
	}
	if tx.Amount+tx.Fee < tx.Amount {
		return errors.New("ledger: amount+fee overflows")
	}
	if b.Money[tx.From] < tx.Amount+tx.Fee {
		return fmt.Errorf("ledger: insufficient balance %d < %d", b.Money[tx.From], tx.Amount+tx.Fee)
	}
	if tx.Nonce != b.Nonce[tx.From] {
		return fmt.Errorf("ledger: bad nonce %d, want %d", tx.Nonce, b.Nonce[tx.From])
	}
	return nil
}

// ApplyTx validates and applies tx. The fee is burned: it leaves the
// sender's balance and the total supply W, so fees cannot be minted
// into sortition weight by self-paying proposers.
func (b *Balances) ApplyTx(tx *Transaction) error {
	if err := b.CheckTx(tx); err != nil {
		return err
	}
	b.Money[tx.From] -= tx.Amount + tx.Fee
	b.Money[tx.To] += tx.Amount
	b.Total -= tx.Fee
	b.Nonce[tx.From]++
	t := b.ensureTree()
	t.touch(tx.From, b.Money[tx.From], b.Nonce[tx.From], true)
	t.touch(tx.To, b.Money[tx.To], b.Nonce[tx.To], true)
	return nil
}
