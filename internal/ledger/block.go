package ledger

import (
	"encoding/binary"
	"fmt"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/wire"
)

// Block is one entry of the blockchain (§8.1): a list of transactions
// plus the metadata BA⋆ needs — round number, the proposer's VRF-based
// seed for a future round, the previous block's hash, and a timestamp.
type Block struct {
	Round     uint64
	PrevHash  crypto.Digest
	Timestamp time.Duration // virtual time at proposal

	// StateRoot commits the account state *after* applying this block's
	// transactions (Balances.Root()): the Merkle root over every account
	// record plus the total supply W. It is what lets a checkpoint
	// snapshot — or a light client's balance proof — be verified against
	// a block header instead of a replay from genesis.
	StateRoot crypto.Digest

	// Seed is the sortition seed contributed by this block (§5.2):
	// either VRF_sk(seed_{r-1} || r) with SeedProof, or, for empty and
	// invalid blocks, H(seed_{r-1} || r) with a nil proof.
	Seed      crypto.Digest
	SeedProof []byte

	// Proposer identifies the block proposer; zero for empty blocks.
	// ProposerProof is the proposer's sortition proof (§6).
	Proposer      crypto.PublicKey
	ProposerProof []byte

	Txns []Transaction

	// PayloadPadding models additional transaction bytes that are not
	// materialized as Transaction values. The evaluation fills blocks to
	// an exact size (e.g. 1 MByte); simulating every one of the ~7000
	// payments in such a block as objects would add nothing, so blocks
	// carry a handful of real transactions plus padding that counts
	// toward WireSize only.
	PayloadPadding int
}

// blockFixedSize is the encoded size of a block's fixed header fields:
// round, prev hash, timestamp, state root, seed, proposer, the two
// proof length prefixes, the u32 transaction count and the u64 padding
// count.
const blockFixedSize = 8 + 32 + 8 + 32 + 32 + 4 + 32 + 4 + 4 + 8

// WireSize returns the block's size on the network in bytes — exactly
// len(wire.Encode(b)), with PayloadPadding materialized.
func (b *Block) WireSize() int {
	total := blockFixedSize + len(b.SeedProof) + len(b.ProposerProof) + b.PayloadPadding
	for i := range b.Txns {
		total += b.Txns[i].WireSize()
	}
	return total
}

// encodeHashed appends every field except the materialized padding
// zeros: the hash preimage is this strict prefix of the wire encoding,
// so hashing a 1 MB block does not digest a megabyte of zeros.
func (b *Block) encodeHashed(e *wire.Encoder) {
	e.Uint64(b.Round)
	e.Fixed(b.PrevHash[:])
	e.Uint64(uint64(b.Timestamp))
	e.Fixed(b.StateRoot[:])
	e.Fixed(b.Seed[:])
	e.Bytes(b.SeedProof)
	e.Fixed(b.Proposer[:])
	e.Bytes(b.ProposerProof)
	e.Int(len(b.Txns))
	for i := range b.Txns {
		b.Txns[i].EncodeTo(e)
	}
	e.Uint64(uint64(b.PayloadPadding))
}

// EncodeTo implements wire.Marshaler. PayloadPadding is materialized as
// zero bytes so the canonical encoding is byte-identical to what a real
// deployment transmits for a size-filled block.
func (b *Block) EncodeTo(e *wire.Encoder) {
	b.encodeHashed(e)
	e.Zeros(b.PayloadPadding)
}

// DecodeFrom implements wire.Unmarshaler.
func (b *Block) DecodeFrom(d *wire.Decoder) {
	b.Round = d.Uint64()
	d.Fixed(b.PrevHash[:])
	b.Timestamp = time.Duration(d.Uint64())
	d.Fixed(b.StateRoot[:])
	d.Fixed(b.Seed[:])
	b.SeedProof = d.Bytes()
	d.Fixed(b.Proposer[:])
	b.ProposerProof = d.Bytes()
	n := d.Count(TxMinWireSize)
	b.Txns = nil
	if n > 0 {
		b.Txns = make([]Transaction, n)
		for i := range b.Txns {
			b.Txns[i].DecodeFrom(d)
		}
	}
	pad := d.Uint64()
	if pad > uint64(d.Remaining()) {
		d.Fail(fmt.Errorf("ledger: block padding %d exceeds remaining input", pad))
		return
	}
	b.PayloadPadding = int(pad)
	d.Skip(b.PayloadPadding)
}

// Hash returns the block's hash, the value BA⋆ votes on. The preimage
// is the canonical wire encoding minus the materialized padding zeros
// (a strict prefix; the padding count itself is covered).
func (b *Block) Hash() crypto.Digest {
	e := wire.NewEncoderSize(blockFixedSize + 256 + len(b.Txns)*TxWireSize)
	b.encodeHashed(e)
	return crypto.HashBytes("algorand.block", e.Data())
}

// IsEmpty reports whether this is an empty block (no proposer).
func (b *Block) IsEmpty() bool {
	return b.Proposer == (crypto.PublicKey{}) && len(b.Txns) == 0 && b.PayloadPadding == 0
}

// EmptyBlock constructs the canonical empty block for a round
// ("Empty(round, H(ctx.last_block))" in Algorithm 7). Its seed is the
// fallback H(prevSeed || round) so that every user derives the same
// block, and hence the same hash, with no proposer involved. An empty
// block commits no transactions, so it carries its parent's state root
// forward unchanged.
func EmptyBlock(round uint64, prevHash crypto.Digest, prevSeed crypto.Digest, stateRoot crypto.Digest) *Block {
	return &Block{
		Round:     round,
		PrevHash:  prevHash,
		StateRoot: stateRoot,
		Seed:      FallbackSeed(prevSeed, round),
	}
}

// FallbackSeed computes seed_r = H(seed_{r-1} || r), used when a block
// carries no valid VRF seed (§5.2).
func FallbackSeed(prevSeed crypto.Digest, round uint64) crypto.Digest {
	return crypto.HashUint64("algorand.seed.fallback", round, prevSeed[:])
}

// SeedAlpha returns the VRF input for the round-r seed, seed_{r-1} || r.
func SeedAlpha(prevSeed crypto.Digest, round uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], round)
	out := make([]byte, 0, 40)
	out = append(out, prevSeed[:]...)
	out = append(out, tmp[:]...)
	return out
}

// SeedFromVRF derives the block seed from a proposer's VRF output.
func SeedFromVRF(out crypto.VRFOutput) crypto.Digest {
	return crypto.HashBytes("algorand.seed.vrf", out[:])
}
