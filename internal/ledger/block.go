package ledger

import (
	"encoding/binary"
	"time"

	"algorand/internal/crypto"
)

// Block is one entry of the blockchain (§8.1): a list of transactions
// plus the metadata BA⋆ needs — round number, the proposer's VRF-based
// seed for a future round, the previous block's hash, and a timestamp.
type Block struct {
	Round     uint64
	PrevHash  crypto.Digest
	Timestamp time.Duration // virtual time at proposal

	// Seed is the sortition seed contributed by this block (§5.2):
	// either VRF_sk(seed_{r-1} || r) with SeedProof, or, for empty and
	// invalid blocks, H(seed_{r-1} || r) with a nil proof.
	Seed      crypto.Digest
	SeedProof []byte

	// Proposer identifies the block proposer; zero for empty blocks.
	// ProposerProof is the proposer's sortition proof (§6).
	Proposer      crypto.PublicKey
	ProposerProof []byte

	Txns []Transaction

	// PayloadPadding models additional transaction bytes that are not
	// materialized as Transaction values. The evaluation fills blocks to
	// an exact size (e.g. 1 MByte); simulating every one of the ~7000
	// payments in such a block as objects would add nothing, so blocks
	// carry a handful of real transactions plus padding that counts
	// toward WireSize only.
	PayloadPadding int
}

// blockHeaderWireSize approximates the serialized metadata size.
const blockHeaderWireSize = 8 + 32 + 8 + 32 + 80 + 32 + 80

// WireSize returns the block's size on the network in bytes.
func (b *Block) WireSize() int {
	return blockHeaderWireSize + len(b.Txns)*TxWireSize + b.PayloadPadding
}

// Encode returns a deterministic binary encoding used for hashing.
func (b *Block) Encode() []byte {
	buf := make([]byte, 0, 256+len(b.Txns)*TxWireSize)
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], b.Round)
	buf = append(buf, tmp[:]...)
	buf = append(buf, b.PrevHash[:]...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(b.Timestamp))
	buf = append(buf, tmp[:]...)
	buf = append(buf, b.Seed[:]...)
	buf = append(buf, byte(len(b.SeedProof)))
	buf = append(buf, b.SeedProof...)
	buf = append(buf, b.Proposer[:]...)
	buf = append(buf, byte(len(b.ProposerProof)))
	buf = append(buf, b.ProposerProof...)
	binary.LittleEndian.PutUint64(tmp[:], uint64(len(b.Txns)))
	buf = append(buf, tmp[:]...)
	for i := range b.Txns {
		tx := &b.Txns[i]
		buf = append(buf, tx.SigningBytes()...)
		buf = append(buf, tx.Sig...)
	}
	binary.LittleEndian.PutUint64(tmp[:], uint64(b.PayloadPadding))
	buf = append(buf, tmp[:]...)
	return buf
}

// Hash returns the block's hash, the value BA⋆ votes on.
func (b *Block) Hash() crypto.Digest {
	return crypto.HashBytes("algorand.block", b.Encode())
}

// IsEmpty reports whether this is an empty block (no proposer).
func (b *Block) IsEmpty() bool {
	return b.Proposer == (crypto.PublicKey{}) && len(b.Txns) == 0 && b.PayloadPadding == 0
}

// EmptyBlock constructs the canonical empty block for a round
// ("Empty(round, H(ctx.last_block))" in Algorithm 7). Its seed is the
// fallback H(prevSeed || round) so that every user derives the same
// block, and hence the same hash, with no proposer involved.
func EmptyBlock(round uint64, prevHash crypto.Digest, prevSeed crypto.Digest) *Block {
	return &Block{
		Round:    round,
		PrevHash: prevHash,
		Seed:     FallbackSeed(prevSeed, round),
	}
}

// FallbackSeed computes seed_r = H(seed_{r-1} || r), used when a block
// carries no valid VRF seed (§5.2).
func FallbackSeed(prevSeed crypto.Digest, round uint64) crypto.Digest {
	return crypto.HashUint64("algorand.seed.fallback", round, prevSeed[:])
}

// SeedAlpha returns the VRF input for the round-r seed, seed_{r-1} || r.
func SeedAlpha(prevSeed crypto.Digest, round uint64) []byte {
	var tmp [8]byte
	binary.LittleEndian.PutUint64(tmp[:], round)
	out := make([]byte, 0, 40)
	out = append(out, prevSeed[:]...)
	out = append(out, tmp[:]...)
	return out
}

// SeedFromVRF derives the block seed from a proposer's VRF output.
func SeedFromVRF(out crypto.VRFOutput) crypto.Digest {
	return crypto.HashBytes("algorand.seed.vrf", out[:])
}
