package ledger

import (
	"bytes"
	"errors"
	"fmt"

	"algorand/internal/crypto"
	"algorand/internal/wire"
)

// A Checkpoint is a verified state snapshot at one committed round:
// the block header (whose StateRoot commits the account table), the
// BA⋆ certificate proving the network agreed on that block, and the
// full account table itself. It is what periodic checkpointing writes
// into the durable archive and what fast sync ships to a joining
// node — the node verifies the certificate against the committee and
// the table against the header's Merkle commitment, then replays only
// the delta past the checkpoint instead of the whole chain (§8.3 made
// O(delta) instead of O(chain)).
//
// The account table is canonical on the wire: records sorted strictly
// ascending by public key. Decoding rejects any other ordering, so a
// checkpoint's encoding — and therefore its hash — is unique for a
// given state, and a peer cannot serve the same snapshot in two
// byte-forms.
type Checkpoint struct {
	Block    *Block
	Cert     *Certificate
	Accounts []AccountRecord
}

// AccountRecord is one account's full state in a checkpoint.
type AccountRecord struct {
	Key   crypto.PublicKey
	Money uint64
	Nonce uint64
}

// accountRecordSize is one record's wire size: key + money + nonce.
const accountRecordSize = 32 + 8 + 8

// checkpointOverheadSize is a checkpoint's encoded size beyond its
// block, certificate, and account records: the account count.
const checkpointOverheadSize = 4

// CheckpointOf snapshots balances into a checkpoint for block b
// (normally the ledger entry's own post-apply state, so that
// Verify's root check holds by construction).
func CheckpointOf(b *Block, cert *Certificate, bal *Balances) *Checkpoint {
	keys := make([]crypto.PublicKey, 0, len(bal.Money))
	seen := make(map[crypto.PublicKey]bool, len(bal.Money))
	for pk := range bal.Money {
		keys = append(keys, pk)
		seen[pk] = true
	}
	for pk := range bal.Nonce {
		if !seen[pk] {
			keys = append(keys, pk)
		}
	}
	sortKeys(keys)
	cp := &Checkpoint{Block: b, Cert: cert, Accounts: make([]AccountRecord, len(keys))}
	for i, pk := range keys {
		cp.Accounts[i] = AccountRecord{Key: pk, Money: bal.Money[pk], Nonce: bal.Nonce[pk]}
	}
	return cp
}

func sortKeys(keys []crypto.PublicKey) {
	// Insertion sort is fine for test-sized tables; real tables sort
	// rarely (once per checkpoint interval).
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && bytes.Compare(keys[j][:], keys[j-1][:]) < 0; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
}

// Round returns the checkpointed round.
func (cp *Checkpoint) Round() uint64 { return cp.Block.Round }

// Balances rebuilds the account state the checkpoint describes.
func (cp *Checkpoint) Balances() *Balances {
	bal := &Balances{
		Money: make(map[crypto.PublicKey]uint64, len(cp.Accounts)),
		Nonce: make(map[crypto.PublicKey]uint64, len(cp.Accounts)),
	}
	for _, a := range cp.Accounts {
		bal.Money[a.Key] = a.Money
		bal.Total += a.Money
		if a.Nonce != 0 {
			bal.Nonce[a.Key] = a.Nonce
		}
	}
	return bal
}

// VerifyState checks the checkpoint's internal integrity: the
// certificate must be for the block, and the account table must hash
// to exactly the state root the block header commits. A checkpoint
// that passes VerifyState carries a state nobody could have tampered
// with after the committee signed the block — what remains for the
// receiver is verifying the certificate itself against the committee
// (context-dependent: see node's snapshot sync). Returns the rebuilt
// balances on success so callers do not hash the table twice.
func (cp *Checkpoint) VerifyState() (*Balances, error) {
	if cp.Block == nil {
		return nil, errors.New("ledger: checkpoint has no block")
	}
	if cp.Cert == nil {
		return nil, errors.New("ledger: checkpoint has no certificate")
	}
	if cp.Cert.Value != cp.Block.Hash() {
		return nil, fmt.Errorf("ledger: checkpoint certificate is for a different block")
	}
	bal := cp.Balances()
	if got := bal.Root(); got != cp.Block.StateRoot {
		return nil, fmt.Errorf("ledger: checkpoint state hashes to %s, header commits %s", got, cp.Block.StateRoot)
	}
	return bal, nil
}

// NewFromCheckpoint builds a ledger whose canonical head is the
// checkpointed block, carrying the checkpoint's account table as live
// state — the fast-sync path: instead of replaying the whole chain
// from genesis, a node starts here and replays only the delta past
// the checkpoint through regular §8.3 catch-up. Genesis (accounts and
// seed0) is still constructed: it is common knowledge (§8.3) and
// supplies the sortition context for rounds whose seed round predates
// the checkpoint, which within the first seed-refresh epoch is
// genesis itself (see Ledger.SortitionContextKnown for the guard).
//
// The checkpoint's structural integrity is re-verified here, but NOT
// its certificate — the caller must have checked the certificate
// against the committee before trusting the resulting ledger (see
// node.VerifyCheckpoint).
func NewFromCheckpoint(p crypto.Provider, cfg Config, genesisAccounts map[crypto.PublicKey]uint64, seed0 crypto.Digest, cp *Checkpoint) (*Ledger, error) {
	bal, err := cp.VerifyState()
	if err != nil {
		return nil, err
	}
	l := New(p, cfg, genesisAccounts, seed0)
	if cp.Block.Round == 0 {
		if cp.Block.Hash() != l.genesis.hash {
			return nil, errors.New("ledger: checkpoint at round 0 is not our genesis")
		}
		return l, nil
	}
	e := &entry{
		block:    cp.Block,
		hash:     cp.Block.Hash(),
		balances: bal,
		cert:     cp.Cert,
		// The checkpoint anchors finality: this node cannot validate
		// anything below it, so no fork below the checkpoint round is
		// ever adoptable.
		final: true,
	}
	if cp.Block.Round == 1 && cp.Block.PrevHash == l.genesis.hash {
		e.parent = l.genesis
	}
	l.entries[e.hash] = e
	l.byRound[cp.Block.Round] = append(l.byRound[cp.Block.Round], e)
	l.head = e
	l.lastFinal = e
	return l, nil
}

// SortitionContextKnown reports whether the head chain actually holds
// the blocks that supply sortition seed and weights for round r. On a
// checkpoint-based ledger, rounds whose seed round falls strictly
// between genesis and the checkpoint have no context (their blocks
// were never replayed) — SortitionSeed would silently fall back to
// the genesis seed, so verifiers must check this first.
func (l *Ledger) SortitionContextKnown(r uint64) bool {
	sr := l.seedRound(r)
	if sr == 0 {
		return true // genesis is always known
	}
	if ancestorAt(l.head, sr) == nil {
		return false
	}
	wr := sr
	if wr >= l.cfg.LookbackRounds {
		wr -= l.cfg.LookbackRounds
	} else {
		wr = 0
	}
	return wr == 0 || ancestorAt(l.head, wr) != nil
}

// WireSize returns the checkpoint's canonical encoded size.
func (cp *Checkpoint) WireSize() int {
	return cp.Block.WireSize() + cp.Cert.WireSize() +
		checkpointOverheadSize + len(cp.Accounts)*accountRecordSize
}

// EncodeTo implements wire.Marshaler.
func (cp *Checkpoint) EncodeTo(e *wire.Encoder) {
	cp.Block.EncodeTo(e)
	cp.Cert.EncodeTo(e)
	e.Int(len(cp.Accounts))
	for i := range cp.Accounts {
		a := &cp.Accounts[i]
		e.Fixed(a.Key[:])
		e.Uint64(a.Money)
		e.Uint64(a.Nonce)
	}
}

// DecodeFrom implements wire.Unmarshaler, rejecting non-canonical
// account ordering (unsorted or duplicate keys).
func (cp *Checkpoint) DecodeFrom(d *wire.Decoder) {
	cp.Block = new(Block)
	cp.Block.DecodeFrom(d)
	cp.Cert = new(Certificate)
	cp.Cert.DecodeFrom(d)
	n := d.Count(accountRecordSize)
	cp.Accounts = make([]AccountRecord, 0, n)
	for i := 0; i < n; i++ {
		var a AccountRecord
		d.Fixed(a.Key[:])
		a.Money = d.Uint64()
		a.Nonce = d.Uint64()
		if d.Err() != nil {
			return
		}
		if i > 0 && bytes.Compare(cp.Accounts[i-1].Key[:], a.Key[:]) >= 0 {
			d.Fail(errors.New("ledger: checkpoint accounts not in canonical order"))
			return
		}
		cp.Accounts = append(cp.Accounts, a)
	}
}
