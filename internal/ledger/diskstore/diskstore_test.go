package diskstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"algorand/internal/crypto"
	"algorand/internal/diskfault"
	"algorand/internal/ledger"
	"algorand/internal/wire"
)

// makeChain builds n linked blocks (rounds 1..n) with deterministic
// content and a one-vote certificate per block; certificates are not
// cryptographically valid — diskstore stores, the node verifies.
func makeChain(n int) ([]*ledger.Block, []*ledger.Certificate) {
	blocks := make([]*ledger.Block, n)
	certs := make([]*ledger.Certificate, n)
	prev := crypto.HashBytes("test.genesis", nil)
	for i := 0; i < n; i++ {
		round := uint64(i + 1)
		b := &ledger.Block{
			Round:          round,
			PrevHash:       prev,
			Seed:           crypto.HashUint64("test.seed", round, nil),
			PayloadPadding: 64 * i,
		}
		c := &ledger.Certificate{
			Round: round,
			Step:  3,
			Value: b.Hash(),
			Votes: []ledger.Vote{{Round: round, Step: 3, Value: b.Hash()}},
		}
		blocks[i], certs[i] = b, c
		prev = b.Hash()
	}
	return blocks, certs
}

// snapshot returns the canonical encoding of a store's archive image
// for byte-for-byte comparison.
func snapshot(s *Store) []byte { return wire.Encode(s.Recovered()) }

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestAppendRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(8)

	s := mustOpen(t, dir, Options{})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatalf("append round %d: %v", b.Round, err)
		}
	}
	want := snapshot(s)
	if last, ok := s.LastRound(); !ok || last != 8 {
		t.Fatalf("LastRound = %d, %v", last, ok)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	st := r.Stats()
	if st.RecoveredRounds != 8 {
		t.Fatalf("recovered %d rounds, want 8", st.RecoveredRounds)
	}
	if st.TruncatedBytes != 0 || st.DroppedRecords != 0 {
		t.Fatalf("clean recovery reported damage: %+v", st)
	}
	if got := snapshot(r); !bytes.Equal(got, want) {
		t.Fatal("recovered archive is not byte-identical to the original")
	}
	for i, b := range blocks {
		rb, ok := r.Recovered().Block(b.Round)
		if !ok || rb.Hash() != b.Hash() {
			t.Fatalf("round %d block missing or wrong", b.Round)
		}
		if rc, ok := r.Recovered().Cert(b.Round); !ok || rc.Value != certs[i].Value {
			t.Fatalf("round %d certificate missing or wrong", b.Round)
		}
	}
}

// TestReplayIsNoOp: re-appending an already-durable chain (the restart
// path: RestoreFromArchive replays the recovered store through the
// commit path) must journal nothing.
func TestReplayIsNoOp(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(5)

	s := mustOpen(t, dir, Options{})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	for i, b := range blocks {
		if err := r.Append(b, certs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if st := r.Stats(); st.Appends != 0 {
		t.Fatalf("replay journaled %d records, want 0", st.Appends)
	}
}

// TestCertUpgrade: a tentative→final certificate upgrade journals a
// compact cert record, not a second copy of the block, and survives
// recovery.
func TestCertUpgrade(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(1)
	b := blocks[0]
	tentative := certs[0]
	final := &ledger.Certificate{
		Round: b.Round, Step: 0, Value: b.Hash(), Final: true,
		Votes: []ledger.Vote{{Round: b.Round, Value: b.Hash()}},
	}

	s := mustOpen(t, dir, Options{})
	if err := s.Append(b, tentative); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(b, final); err != nil {
		t.Fatal(err)
	}
	// Downgrade attempt is a no-op.
	if err := s.Append(b, tentative); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Appends != 2 {
		t.Fatalf("journaled %d records, want 2 (put + cert)", st.Appends)
	}
	s.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	c, ok := r.Recovered().Cert(b.Round)
	if !ok || !c.Final {
		t.Fatalf("recovered cert final=%v, want final certificate", ok && c.Final)
	}
}

// TestReconcileDurable: §8.2 fork repair replaces the block on disk;
// a nil certificate erases the stored one; matching state is a no-op.
func TestReconcileDurable(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(2)

	s := mustOpen(t, dir, Options{})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatal(err)
		}
	}
	// The canonical chain disagrees about round 2: adopt a different
	// block with no certificate of its own.
	fork := &ledger.Block{
		Round:    2,
		PrevHash: blocks[0].Hash(),
		Seed:     crypto.HashUint64("test.fork", 2, nil),
	}
	if err := s.Reconcile(fork, nil); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Appends
	if err := s.Reconcile(fork, nil); err != nil { // identical state: no-op
		t.Fatal(err)
	}
	if after := s.Stats().Appends; after != before {
		t.Fatalf("idempotent reconcile journaled %d extra records", after-before)
	}
	s.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	got, ok := r.Recovered().Block(2)
	if !ok || got.Hash() != fork.Hash() {
		t.Fatal("reconciled block did not survive recovery")
	}
	if _, ok := r.Recovered().Cert(2); ok {
		t.Fatal("erased certificate came back after recovery")
	}
	if b1, ok := r.Recovered().Block(1); !ok || b1.Hash() != blocks[0].Hash() {
		t.Fatal("untouched round 1 damaged by reconcile")
	}
}

// TestShardedAppend: only the shard's rounds are persisted.
func TestShardedAppend(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(6)
	s := mustOpen(t, dir, Options{ShardIndex: 1, ShardCount: 3})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	r := mustOpen(t, dir, Options{ShardIndex: 1, ShardCount: 3})
	defer r.Close()
	if got := r.Rounds(); got != 2 { // rounds 1 and 4 ≡ 1 (mod 3)
		t.Fatalf("recovered %d rounds, want 2", got)
	}
	if _, ok := r.Recovered().Block(4); !ok {
		t.Fatal("round 4 (≡ shard 1 mod 3) missing")
	}
	if _, ok := r.Recovered().Block(2); ok {
		t.Fatal("round 2 persisted outside the shard")
	}
}

// lastSegment returns the path of the highest-numbered segment file.
func lastSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var best string
	var bestSeq uint64
	for _, e := range entries {
		if seq, ok := segSeq(e.Name()); ok && seq >= bestSeq {
			bestSeq, best = seq, filepath.Join(dir, e.Name())
		}
	}
	if best == "" {
		t.Fatal("no segment files")
	}
	return best
}

// recordOffsets parses a segment's framing and returns each record's
// start offset and payload length.
func recordOffsets(t *testing.T, path string) (data []byte, offs []int, lens []int) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off+headerSize <= len(data); {
		if binary.LittleEndian.Uint32(data[off:]) != recordMagic {
			break
		}
		l := int(binary.LittleEndian.Uint32(data[off+4:]))
		if off+headerSize+l > len(data) {
			break
		}
		offs = append(offs, off)
		lens = append(lens, l)
		off += headerSize + l
	}
	return data, offs, lens
}

// TestTornTailTruncated: a crash mid-append leaves a half-written
// record; recovery must cut it off at the record boundary and keep the
// durable prefix.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(4)
	s := mustOpen(t, dir, Options{})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshot(s)
	s.Close()

	// Simulate the torn tail a SIGKILL mid-commit leaves behind: a
	// correct header claiming more payload than ever hit the disk.
	seg := lastSegment(t, dir)
	tail := make([]byte, headerSize+10)
	binary.LittleEndian.PutUint32(tail[0:4], recordMagic)
	binary.LittleEndian.PutUint32(tail[4:8], 4096) // claims 4 KiB, has 10 B
	binary.LittleEndian.PutUint32(tail[8:12], 0)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(tail)
	f.Close()
	sizeBefore := fileSize(t, seg)

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	st := r.Stats()
	if st.TruncatedBytes != int64(len(tail)) {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(tail))
	}
	if got := snapshot(r); !bytes.Equal(got, want) {
		t.Fatal("torn tail damaged the durable prefix")
	}
	if after := fileSize(t, seg); after != sizeBefore-int64(len(tail)) {
		t.Fatalf("segment size %d after recovery, want %d", after, sizeBefore-int64(len(tail)))
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// TestCorruptRecordDropped: bit rot inside one record's payload drops
// exactly that record; framing resync keeps every later record.
func TestCorruptRecordDropped(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(3)
	s := mustOpen(t, dir, Options{})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	// Flip one byte inside record 2 (records: 0=meta, 1..3=puts), i.e.
	// round 2's put.
	seg := lastSegment(t, dir)
	data, offs, lens := recordOffsets(t, seg)
	if len(offs) < 4 {
		t.Fatalf("found %d records, want ≥ 4", len(offs))
	}
	data[offs[2]+headerSize+lens[2]/2] ^= 0xFF
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	st := r.Stats()
	if st.DroppedRecords != 1 {
		t.Fatalf("dropped %d records, want 1 (stats %+v)", st.DroppedRecords, st)
	}
	if _, ok := r.Recovered().Block(2); ok {
		t.Fatal("corrupt round-2 record was not dropped")
	}
	for _, round := range []uint64{1, 3} {
		if _, ok := r.Recovered().Block(round); !ok {
			t.Fatalf("round %d lost despite intact record", round)
		}
	}
}

// TestRotateAndRetryOnFaults: scripted torn-write and fsync faults on
// the active segment must not lose data — the store rotates to a fresh
// segment and retries, and recovery sees every round.
func TestRotateAndRetryOnFaults(t *testing.T) {
	dir := t.TempDir()
	inj := diskfault.New(nil)
	// Tear the write crossing offset 150 of segment 1, then fail an
	// fsync on segment 2 once 100 bytes are down.
	inj.Script(segName(1), diskfault.Script{{After: 150, Act: diskfault.TornWrite}})
	inj.Script(segName(2), diskfault.Script{{After: 100, Act: diskfault.FailSync}})

	blocks, certs := makeChain(6)
	s := mustOpen(t, dir, Options{FS: inj})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatalf("append round %d under faults: %v", b.Round, err)
		}
	}
	want := snapshot(s)
	st := s.Stats()
	if st.WriteErrors == 0 || st.SyncErrors == 0 {
		t.Fatalf("faults did not fire: %+v (injector fired %d)", st, inj.Fired())
	}
	if st.Rotations < 2 {
		t.Fatalf("rotated %d times, want ≥ 2", st.Rotations)
	}
	s.Close()

	// Recovery through the real filesystem: the torn segment tails are
	// truncated, and every appended round survives.
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := snapshot(r); !bytes.Equal(got, want) {
		t.Fatalf("recovery after faults lost data (stats %+v)", r.Stats())
	}
}

// TestCorruptReadAtRecovery: a bad sector surfacing while recovery
// reads a segment back must drop only the affected record.
func TestCorruptReadAtRecovery(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(3)
	s := mustOpen(t, dir, Options{})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	seg := lastSegment(t, dir)
	_, offs, lens := recordOffsets(t, seg)
	if len(offs) < 4 {
		t.Fatalf("found %d records, want ≥ 4", len(offs))
	}
	inj := diskfault.New(nil)
	inj.Script(filepath.Base(seg), diskfault.Script{
		{After: int64(offs[3] + headerSize + lens[3]/2), Act: diskfault.CorruptRead},
	})

	r, err := Open(dir, Options{FS: inj})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if inj.Fired() != 1 {
		t.Fatalf("corrupt-read fired %d times, want 1", inj.Fired())
	}
	if st := r.Stats(); st.DroppedRecords != 1 {
		t.Fatalf("dropped %d records, want 1", st.DroppedRecords)
	}
	if _, ok := r.Recovered().Block(3); ok {
		t.Fatal("record read through a bad sector was trusted")
	}
	for _, round := range []uint64{1, 2} {
		if _, ok := r.Recovered().Block(round); !ok {
			t.Fatalf("round %d lost", round)
		}
	}
}

// TestSegmentRotationBySize: small segments roll over and recovery
// walks all of them in order.
func TestSegmentRotationBySize(t *testing.T) {
	dir := t.TempDir()
	blocks, certs := makeChain(12)
	s := mustOpen(t, dir, Options{SegmentBytes: 1024})
	for i, b := range blocks {
		if err := s.Append(b, certs[i]); err != nil {
			t.Fatal(err)
		}
	}
	want := snapshot(s)
	if st := s.Stats(); st.Rotations == 0 {
		t.Fatal("1 KiB segments never rotated across 12 rounds")
	}
	s.Close()

	entries, _ := os.ReadDir(dir)
	if len(entries) < 3 {
		t.Fatalf("%d segment files, want ≥ 3", len(entries))
	}
	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if got := snapshot(r); !bytes.Equal(got, want) {
		t.Fatal("multi-segment recovery mismatch")
	}
}

// TestClosedStore: writes after Close fail loudly.
func TestClosedStore(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	s.Close()
	blocks, certs := makeChain(1)
	if err := s.Append(blocks[0], certs[0]); err != ErrClosed {
		t.Fatalf("Append after Close = %v, want ErrClosed", err)
	}
}

// TestFaultSoak is the DISKFAULT_SOAK knob: randomized fault scripts
// (torn writes, failed writes, failed fsyncs) against random append
// schedules, asserting after every iteration that recovery restores
// exactly what Append reported durable. DISKFAULT_SOAK=200 runs 200
// iterations; unset runs a quick 10.
func TestFaultSoak(t *testing.T) {
	iters := 10
	if v := os.Getenv("DISKFAULT_SOAK"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("bad DISKFAULT_SOAK=%q", v)
		}
		iters = n
	}
	for it := 0; it < iters; it++ {
		it := it
		t.Run(fmt.Sprintf("iter=%d", it), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(0xD15C + it)))
			dir := t.TempDir()
			inj := diskfault.New(nil)
			// Script 1-3 write-side faults at random offsets over the
			// first few segments.
			for i := 0; i < 1+rng.Intn(3); i++ {
				acts := []diskfault.Action{diskfault.TornWrite, diskfault.FailWrite, diskfault.FailSync}
				inj.Script(segName(uint64(1+rng.Intn(2))), diskfault.Script{{
					After: int64(rng.Intn(4000)),
					Act:   acts[rng.Intn(len(acts))],
				}})
			}
			n := 3 + rng.Intn(10)
			blocks, certs := makeChain(n)
			s, err := Open(dir, Options{FS: inj, SegmentBytes: int64(512 + rng.Intn(4096))})
			if err != nil {
				t.Fatalf("open under faults: %v", err)
			}
			durable := make(map[uint64]bool)
			for i, b := range blocks {
				c := certs[i]
				if rng.Intn(4) == 0 {
					c = nil // some rounds commit without a cert first
				}
				if err := s.Append(b, c); err == nil {
					durable[b.Round] = true
				}
			}
			want := snapshot(s)
			s.Close()

			r := mustOpen(t, dir, Options{})
			defer r.Close()
			got := snapshot(r)
			if !bytes.Equal(got, want) {
				t.Fatalf("recovery mismatch after faults (stats %+v, injector fired %d)",
					r.Stats(), inj.Fired())
			}
			for round := range durable {
				if _, ok := r.Recovered().Block(round); !ok {
					t.Fatalf("round %d reported durable but lost", round)
				}
			}
		})
	}
}

// makeCheckpoint builds a structurally valid checkpoint at the given
// round: n accounts, a block whose StateRoot commits the table, and a
// fake cert for the block (diskstore verifies structure, not
// committee signatures — that is the node's job).
func makeCheckpoint(round uint64, n int) *ledger.Checkpoint {
	bal := &ledger.Balances{
		Money: make(map[crypto.PublicKey]uint64),
		Nonce: make(map[crypto.PublicKey]uint64),
	}
	for i := 0; i < n; i++ {
		pk := crypto.PublicKey(crypto.HashUint64("test.cp.key", uint64(i), nil))
		bal.Money[pk] = uint64(500 + i)
		bal.Total += uint64(500 + i)
		if i%2 == 0 {
			bal.Nonce[pk] = uint64(i)
		}
	}
	b := &ledger.Block{
		Round:     round,
		PrevHash:  crypto.HashUint64("test.cp.prev", round, nil),
		Seed:      crypto.HashUint64("test.cp.seed", round, nil),
		StateRoot: bal.Root(),
	}
	c := &ledger.Certificate{
		Round: round,
		Step:  3,
		Value: b.Hash(),
		Votes: []ledger.Vote{{Round: round, Step: 3, Value: b.Hash()}},
	}
	return ledger.CheckpointOf(b, c, bal)
}

// TestCheckpointDurable: checkpoints journal, survive recovery, and
// newest-by-round wins; stale or repeated checkpoints journal nothing.
func TestCheckpointDurable(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, ok := s.Checkpoint(); ok {
		t.Fatal("fresh store claims a checkpoint")
	}
	if err := s.AppendCheckpoint(makeCheckpoint(4, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCheckpoint(makeCheckpoint(8, 5)); err != nil {
		t.Fatal(err)
	}
	before := s.Stats().Appends
	if err := s.AppendCheckpoint(makeCheckpoint(4, 5)); err != nil { // stale: no-op
		t.Fatal(err)
	}
	if err := s.AppendCheckpoint(makeCheckpoint(8, 5)); err != nil { // repeat: no-op
		t.Fatal(err)
	}
	if after := s.Stats().Appends; after != before {
		t.Fatalf("stale/repeat checkpoints journaled %d records", after-before)
	}
	s.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	cp, ok := r.Checkpoint()
	if !ok || cp.Round() != 8 {
		t.Fatalf("recovered checkpoint round %v, %v; want 8, true", cp, ok)
	}
	if _, err := cp.VerifyState(); err != nil {
		t.Fatalf("recovered checkpoint fails verification: %v", err)
	}
}

// TestCheckpointRejectsInvalid: a checkpoint whose account table does
// not hash to the header's state root never reaches the journal.
func TestCheckpointRejectsInvalid(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer s.Close()
	cp := makeCheckpoint(4, 5)
	cp.Accounts[0].Money += 1_000_000
	if err := s.AppendCheckpoint(cp); err == nil {
		t.Fatal("tampered checkpoint accepted for journaling")
	}
	if st := s.Stats(); st.Appends != 0 {
		t.Fatalf("rejected checkpoint journaled %d records", st.Appends)
	}
}

// checkpointRecords returns the offsets/lengths of recCheckpoint
// records in a segment, in file order.
func checkpointRecords(t *testing.T, path string) (data []byte, offs []int, lens []int) {
	t.Helper()
	data, allOffs, allLens := recordOffsets(t, path)
	for i, off := range allOffs {
		if allLens[i] > 0 && data[off+headerSize] == recCheckpoint {
			offs = append(offs, off)
			lens = append(lens, allLens[i])
		}
	}
	return data, offs, lens
}

// TestTamperedCheckpointFallsBack: a checkpoint record rewritten on
// disk — with its CRC fixed up, so framing looks clean — fails
// structural verification at recovery and the previous good
// checkpoint is served instead. This is the torn-write/poisoning
// half of fast sync's durability story: the archive never hands the
// node a snapshot whose account table disagrees with the committed
// block header it rides with.
func TestTamperedCheckpointFallsBack(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.AppendCheckpoint(makeCheckpoint(4, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCheckpoint(makeCheckpoint(8, 5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// Rewrite one byte deep inside the newer checkpoint's account table
	// and recompute the CRC so only content verification can catch it.
	seg := lastSegment(t, dir)
	data, offs, lens := checkpointRecords(t, seg)
	if len(offs) != 2 {
		t.Fatalf("found %d checkpoint records, want 2", len(offs))
	}
	off, l := offs[1], lens[1]
	data[off+headerSize+l-10] ^= 0x01 // inside the last account record
	payload := data[off+headerSize : off+headerSize+l]
	binary.LittleEndian.PutUint32(data[off+8:off+12], crc32.Checksum(payload, crcTable))
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if st := r.Stats(); st.DroppedRecords != 1 {
		t.Fatalf("dropped %d records, want 1 (the tampered checkpoint)", st.DroppedRecords)
	}
	cp, ok := r.Checkpoint()
	if !ok || cp.Round() != 4 {
		t.Fatalf("fallback checkpoint round %v, %v; want 4, true", cp, ok)
	}
	if _, err := cp.VerifyState(); err != nil {
		t.Fatalf("fallback checkpoint fails verification: %v", err)
	}
}

// TestTornCheckpointKeepsPrevious: a crash mid-checkpoint-write leaves
// a torn record; recovery truncates it and the previous checkpoint
// stays usable.
func TestTornCheckpointKeepsPrevious(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.AppendCheckpoint(makeCheckpoint(4, 5)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	// A half-written checkpoint record: correct framing header, payload
	// cut off mid-account-table.
	full := wire.Encode(makeCheckpoint(8, 5))
	payload := append([]byte{recCheckpoint}, full...)
	torn := make([]byte, headerSize+len(payload)/2)
	binary.LittleEndian.PutUint32(torn[0:4], recordMagic)
	binary.LittleEndian.PutUint32(torn[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(torn[8:12], crc32.Checksum(payload, crcTable))
	copy(torn[headerSize:], payload[:len(payload)/2])
	seg := lastSegment(t, dir)
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write(torn)
	f.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	if st := r.Stats(); st.TruncatedBytes != int64(len(torn)) {
		t.Fatalf("truncated %d bytes, want %d", st.TruncatedBytes, len(torn))
	}
	cp, ok := r.Checkpoint()
	if !ok || cp.Round() != 4 {
		t.Fatalf("checkpoint after torn write: %v, %v; want round 4", cp, ok)
	}
}

// TestCheckpointUnderWriteFaults: rotate-and-retry covers checkpoint
// records like any other; a torn write on the active segment does not
// lose the checkpoint.
func TestCheckpointUnderWriteFaults(t *testing.T) {
	dir := t.TempDir()
	inj := diskfault.New(nil)
	inj.Script(segName(1), diskfault.Script{{After: 100, Act: diskfault.TornWrite}})
	s := mustOpen(t, dir, Options{FS: inj})
	if err := s.AppendCheckpoint(makeCheckpoint(4, 20)); err != nil {
		t.Fatalf("checkpoint under faults: %v", err)
	}
	if st := s.Stats(); st.WriteErrors == 0 {
		t.Fatalf("fault did not fire: %+v", st)
	}
	s.Close()

	r := mustOpen(t, dir, Options{})
	defer r.Close()
	cp, ok := r.Checkpoint()
	if !ok || cp.Round() != 4 {
		t.Fatalf("checkpoint lost to write fault: %v, %v", cp, ok)
	}
}

// BenchmarkAppend measures the fsync'd commit path.
func BenchmarkAppend(b *testing.B) {
	for _, sync := range []bool{true, false} {
		name := "fsync"
		if !sync {
			name = "nosync"
		}
		b.Run(name, func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, Options{NoSync: !sync})
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			blocks, certs := makeChain(b.N)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := s.Append(blocks[i], certs[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRecover measures Open over an existing chain.
func BenchmarkRecover(b *testing.B) {
	for _, n := range []int{16, 64, 256} {
		b.Run(fmt.Sprintf("rounds=%d", n), func(b *testing.B) {
			dir := b.TempDir()
			s, err := Open(dir, Options{NoSync: true})
			if err != nil {
				b.Fatal(err)
			}
			blocks, certs := makeChain(n)
			for i := range blocks {
				if err := s.Append(blocks[i], certs[i]); err != nil {
					b.Fatal(err)
				}
			}
			s.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r, err := Open(dir, Options{NoSync: true})
				if err != nil {
					b.Fatal(err)
				}
				if r.Rounds() != n {
					b.Fatalf("recovered %d rounds", r.Rounds())
				}
				r.Close()
			}
		})
	}
}
