// Package diskstore is the durable, crash-safe form of the §8.3 ledger
// archive: every committed (block, certificate) pair a node is
// responsible for is journaled through a checksummed write-ahead log of
// segmented archive files before the node proceeds, and recovered —
// trustlessly — on restart.
//
// On-disk layout: a data directory of segments named seg-%08d.wal,
// numbered from 1. Each segment is a sequence of records:
//
//	[4B magic "AWL1"][4B payload length][4B CRC-32C of payload][payload]
//
// all fixed fields little-endian. A payload is one kind byte followed
// by a body in the canonical internal/wire encoding:
//
//	meta      — format version, shard index, shard count (first record
//	            of every segment)
//	put       — block, has-cert bool, certificate
//	cert      — round, certificate (tentative→final upgrade without
//	            rewriting the block)
//	reconcile — block, has-cert bool, certificate (§8.2 fork repair;
//	            has-cert=false erases any stored certificate)
//	checkpoint — a ledger.Checkpoint: block header, certificate, and
//	            full account table at one committed round; the newest
//	            structurally valid one wins
//
// Durability rules: every record is fsync'd before Append/Reconcile
// returns (unless Options.NoSync), and a freshly created segment's
// directory is fsync'd so the file name itself survives power loss. A
// write or fsync failure poisons the active segment: the store rotates
// to a new segment and retries, so one bad sector cannot wedge the
// commit path.
//
// Recovery rules (Open): segments are scanned in order. A record whose
// header or payload extends past end-of-file is a torn tail — the
// segment is truncated at the record boundary and scanning stops, which
// is exactly the state a power loss mid-append leaves behind. A record
// with intact framing but a bad checksum or an undecodable body is
// dropped and scanning resyncs at the next record. Recovered rounds are
// replayed into an in-memory ledger.Store image; the node then
// re-verifies every certificate against the chain before trusting any
// of it (node.RestoreFromArchive), so the disk is trusted no more than
// a peer. Writing always starts a fresh segment — recovery never
// appends to a file it just repaired.
package diskstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"algorand/internal/crypto"
	"algorand/internal/diskfault"
	"algorand/internal/ledger"
	"algorand/internal/metrics"
	"algorand/internal/wire"
)

const (
	// recordMagic opens every record ("AWL1" little-endian).
	recordMagic uint32 = 0x314C5741
	// headerSize is the fixed record header: magic, length, CRC.
	headerSize = 12
	// maxRecordSize bounds a single record payload; anything larger in a
	// header is corruption, not data.
	maxRecordSize = 64 << 20
	// formatVersion is the on-disk format this package writes and reads.
	formatVersion = 1

	segPrefix = "seg-"
	segSuffix = ".wal"
)

// Record kinds (first payload byte).
const (
	recMeta byte = iota
	recPut
	recCert
	recReconcile
	recCheckpoint
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed store.
var ErrClosed = errors.New("diskstore: store is closed")

// Options configures Open.
type Options struct {
	// FS is the file abstraction to write through; nil means the real
	// filesystem. Tests pass a diskfault.Injector.
	FS diskfault.FS
	// ShardIndex/ShardCount give the §8.3 shard this archive persists
	// (count 0 means 1: keep everything). Must match an existing data
	// directory's meta records.
	ShardIndex uint64
	ShardCount uint64
	// SegmentBytes rotates the active segment once it exceeds this size
	// (default 4 MiB).
	SegmentBytes int64
	// NoSync skips fsync after each record — only for benchmarks that
	// build long chains quickly; it forfeits the crash-safety the
	// package exists for.
	NoSync bool
	// Metrics receives the store's counters and recovery gauges
	// (algorand_disk_*). Nil gets a private registry, so Stats() works
	// standalone. Recovery gauges always describe the most recent Open;
	// the operational counters accumulate for the registry's lifetime
	// while Stats() reports them relative to Open.
	Metrics *metrics.Registry
}

// Stats counts what the store has done since (and during) Open.
type Stats struct {
	// RecoveredRounds is how many rounds the Open scan restored.
	RecoveredRounds int
	// RecoveredRecords is how many intact records the Open scan applied.
	RecoveredRecords int
	// TruncatedBytes is how much torn tail Open cut off segment files.
	TruncatedBytes int64
	// DroppedRecords counts records discarded for bad checksum or
	// undecodable body.
	DroppedRecords int
	// Appends counts records journaled since Open.
	Appends int
	// Rotations counts segment rollovers (size or fault driven).
	Rotations int
	// WriteErrors / SyncErrors count faults absorbed by rotate-and-retry.
	WriteErrors int
	SyncErrors  int
}

// recState is the durable image of one round, used to dedup journaling:
// replaying already-durable rounds (restart's RestoreFromArchive path)
// writes nothing.
type recState struct {
	hash      crypto.Digest
	hasCert   bool
	certFinal bool
}

// Store is the durable archive. All methods are safe for concurrent
// use.
type Store struct {
	mu sync.Mutex

	fs       diskfault.FS
	dir      string
	segBytes int64
	noSync   bool

	mem     *ledger.Store // in-memory image of everything durable
	durable map[uint64]recState
	last    uint64 // highest durable round
	haveAny bool

	// checkpoint is the newest structurally valid state snapshot on
	// disk (nil if none). Recovery drops checkpoint records that fail
	// ledger.Checkpoint.VerifyState, so a torn or tampered checkpoint
	// silently yields the previous good one.
	checkpoint *ledger.Checkpoint

	active     diskfault.File
	activeSeq  uint64
	activeSize int64
	broken     bool // active segment absorbed a write/sync fault
	closed     bool

	cnt storeCounters
	// base holds the operational counters' values at the end of Open,
	// so Stats() reports activity since Open even when the registry
	// (and thus the counters) outlives a restart.
	base struct {
		appends, rotations, writeErrors, syncErrors uint64
	}
}

// storeCounters is the store's registry-backed instrumentation.
// Recovery numbers are gauges — each Open overwrites them, so they
// always describe the latest recovery scan — while operational counts
// are cumulative counters.
type storeCounters struct {
	recoveredRounds  *metrics.Gauge
	recoveredRecords *metrics.Gauge
	truncatedBytes   *metrics.Gauge
	droppedRecords   *metrics.Gauge
	appends          *metrics.Counter
	rotations        *metrics.Counter
	writeErrors      *metrics.Counter
	syncErrors       *metrics.Counter
}

func newStoreCounters(r *metrics.Registry) storeCounters {
	return storeCounters{
		recoveredRounds:  r.Gauge("algorand_disk_recovered_rounds", "rounds restored by the last Open scan"),
		recoveredRecords: r.Gauge("algorand_disk_recovered_records", "intact records applied by the last Open scan"),
		truncatedBytes:   r.Gauge("algorand_disk_truncated_bytes", "torn tail bytes cut off by the last Open scan"),
		droppedRecords:   r.Gauge("algorand_disk_dropped_records", "records discarded by the last Open scan (bad checksum or body)"),
		appends:          r.Counter("algorand_disk_appends_total", "records journaled"),
		rotations:        r.Counter("algorand_disk_rotations_total", "segment rollovers (size or fault driven)"),
		writeErrors:      r.Counter("algorand_disk_write_errors_total", "write faults absorbed by rotate-and-retry"),
		syncErrors:       r.Counter("algorand_disk_sync_errors_total", "fsync faults absorbed by rotate-and-retry"),
	}
}

// Open creates or recovers the archive in dir. Existing segments are
// scanned under the recovery rules in the package comment; a new active
// segment is then started for writing.
func Open(dir string, opts Options) (*Store, error) {
	fs := opts.FS
	if fs == nil {
		fs = diskfault.OS()
	}
	if opts.ShardCount == 0 {
		opts.ShardCount = 1
	}
	segBytes := opts.SegmentBytes
	if segBytes <= 0 {
		segBytes = 4 << 20
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Store{
		fs:       fs,
		dir:      dir,
		segBytes: segBytes,
		noSync:   opts.NoSync,
		mem:      ledger.NewStore(opts.ShardIndex, opts.ShardCount),
		durable:  make(map[uint64]recState),
		cnt:      newStoreCounters(reg),
	}
	// This Open's recovery scan starts from zero even if the registry
	// carries a previous incarnation's gauges (the restart path).
	s.cnt.recoveredRounds.Set(0)
	s.cnt.recoveredRecords.Set(0)
	s.cnt.truncatedBytes.Set(0)
	s.cnt.droppedRecords.Set(0)

	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("diskstore: %w", err)
	}
	var maxSeq uint64
	for _, name := range names {
		seq, ok := segSeq(name)
		if !ok {
			continue
		}
		if seq > maxSeq {
			maxSeq = seq
		}
		if err := s.recoverSegment(filepath.Join(dir, name), opts); err != nil {
			return nil, err
		}
	}
	s.cnt.recoveredRounds.Set(int64(s.mem.Rounds()))

	s.activeSeq = maxSeq
	if err := s.rotateLocked(); err != nil {
		return nil, fmt.Errorf("diskstore: starting segment: %w", err)
	}
	// Baseline the operational counters so Stats() reports activity
	// since Open — the initial segment isn't a rollover.
	s.base.appends = s.cnt.appends.Load()
	s.base.rotations = s.cnt.rotations.Load()
	s.base.writeErrors = s.cnt.writeErrors.Load()
	s.base.syncErrors = s.cnt.syncErrors.Load()
	return s, nil
}

// segSeq parses a segment file name, reporting whether it is one.
func segSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	mid := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	seq, err := strconv.ParseUint(mid, 10, 64)
	if err != nil || seq == 0 {
		return 0, false
	}
	return seq, true
}

func segName(seq uint64) string { return fmt.Sprintf("seg-%08d.wal", seq) }

// recoverSegment scans one segment, applying intact records and
// truncating a torn tail in place.
func (s *Store) recoverSegment(path string, opts Options) error {
	f, err := s.fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("diskstore: %w", err)
	}
	buf, rerr := io.ReadAll(f)
	f.Close()
	if rerr != nil {
		// Scan whatever was readable; the unread rest is treated as a
		// torn tail below but not truncated (the read path, not the
		// data, may be at fault).
		rerr = fmt.Errorf("diskstore: reading %s: %w", filepath.Base(path), rerr)
	}

	off := 0
	torn := false
	for off < len(buf) {
		rest := buf[off:]
		if len(rest) < headerSize {
			torn = true
			break
		}
		magic := binary.LittleEndian.Uint32(rest[0:4])
		length := binary.LittleEndian.Uint32(rest[4:8])
		sum := binary.LittleEndian.Uint32(rest[8:12])
		if magic != recordMagic || length > maxRecordSize {
			// A mangled header gives no trustworthy length to resync by:
			// everything from here is torn tail.
			torn = true
			break
		}
		if headerSize+int(length) > len(rest) {
			torn = true
			break
		}
		payload := rest[headerSize : headerSize+int(length)]
		if crc32.Checksum(payload, crcTable) != sum {
			// Framing is intact, so resync at the next record.
			s.cnt.droppedRecords.Add(1)
			off += headerSize + int(length)
			continue
		}
		if ok := s.applyRecord(payload, opts); ok {
			s.cnt.recoveredRecords.Add(1)
		} else {
			s.cnt.droppedRecords.Add(1)
		}
		off += headerSize + int(length)
	}

	if torn && rerr == nil && off < len(buf) {
		s.cnt.truncatedBytes.Add(int64(len(buf) - off))
		if err := s.truncate(path, int64(off)); err != nil {
			return err
		}
	}
	return nil
}

// truncate cuts a segment back to size and makes the cut durable.
func (s *Store) truncate(path string, size int64) error {
	f, err := s.fs.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("diskstore: truncating %s: %w", filepath.Base(path), err)
	}
	err = f.Truncate(size)
	if err == nil && !s.noSync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("diskstore: truncating %s: %w", filepath.Base(path), err)
	}
	return nil
}

// applyRecord replays one intact record into the in-memory image,
// reporting whether it was applied.
func (s *Store) applyRecord(payload []byte, opts Options) bool {
	d := wire.NewDecoder(payload)
	switch kind := d.Byte(); kind {
	case recMeta:
		version := d.Uint32()
		shardIndex := d.Uint64()
		shardCount := d.Uint64()
		if d.Finish() != nil || version != formatVersion {
			return false
		}
		// A shard mismatch means the directory belongs to someone else's
		// archive; refusing the record (rather than Open erroring) keeps
		// recovery total, and the caller sees zero recovered rounds.
		return shardIndex == opts.ShardIndex%opts.ShardCount && shardCount == opts.ShardCount
	case recPut, recReconcile:
		b := new(ledger.Block)
		b.DecodeFrom(d)
		var c *ledger.Certificate
		if d.Bool() {
			c = new(ledger.Certificate)
			c.DecodeFrom(d)
		}
		if d.Finish() != nil {
			return false
		}
		if c != nil && c.Value != b.Hash() {
			return false
		}
		if kind == recPut {
			if !s.mem.Put(b, c) {
				return false
			}
		} else {
			s.mem.Reconcile(b, c)
		}
		s.noteDurable(b.Round)
		return true
	case recCheckpoint:
		cp := new(ledger.Checkpoint)
		cp.DecodeFrom(d)
		if d.Finish() != nil {
			return false
		}
		if _, err := cp.VerifyState(); err != nil {
			return false
		}
		if s.checkpoint == nil || cp.Round() > s.checkpoint.Round() {
			s.checkpoint = cp
		}
		return true
	case recCert:
		round := d.Uint64()
		c := new(ledger.Certificate)
		c.DecodeFrom(d)
		if d.Finish() != nil {
			return false
		}
		b, ok := s.mem.Block(round)
		if !ok || c.Value != b.Hash() {
			return false
		}
		s.mem.Put(b, c)
		s.noteDurable(round)
		return true
	default:
		return false
	}
}

// noteDurable refreshes the dedup state for a round from the in-memory
// image.
func (s *Store) noteDurable(round uint64) {
	b, ok := s.mem.Block(round)
	if !ok {
		delete(s.durable, round)
		return
	}
	st := recState{hash: b.Hash()}
	if c, ok := s.mem.Cert(round); ok {
		st.hasCert = true
		st.certFinal = c.Final
	}
	s.durable[round] = st
	if !s.haveAny || round > s.last {
		s.haveAny = true
		s.last = round
	}
}

// rotateLocked closes the active segment (if any) and starts a fresh
// one, writing its meta record and fsyncing the directory so the new
// file name is durable. Caller holds s.mu.
func (s *Store) rotateLocked() error {
	if s.active != nil {
		s.active.Close()
		s.active = nil
		s.cnt.rotations.Inc()
	}
	s.activeSeq++
	s.activeSize = 0
	s.broken = false
	path := filepath.Join(s.dir, segName(s.activeSeq))
	f, err := s.fs.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	s.active = f

	var e wire.Encoder
	e.Byte(recMeta)
	e.Uint32(formatVersion)
	e.Uint64(s.mem.ShardIndex)
	e.Uint64(s.mem.ShardCount)
	if err := s.writeToActive(e.Data()); err != nil {
		s.broken = true
		return err
	}
	if err := s.fs.SyncDir(s.dir); err != nil {
		s.broken = true
		return err
	}
	return nil
}

// writeToActive frames, writes, and (unless NoSync) fsyncs one payload
// to the active segment. Caller holds s.mu.
func (s *Store) writeToActive(payload []byte) error {
	rec := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], recordMagic)
	binary.LittleEndian.PutUint32(rec[4:8], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[8:12], crc32.Checksum(payload, crcTable))
	copy(rec[headerSize:], payload)
	if _, err := s.active.Write(rec); err != nil {
		s.cnt.writeErrors.Inc()
		return err
	}
	if !s.noSync {
		if err := s.active.Sync(); err != nil {
			s.cnt.syncErrors.Inc()
			return err
		}
	}
	s.activeSize += int64(len(rec))
	return nil
}

// journal writes one record durably, rotating to a fresh segment and
// retrying if the active one absorbs a fault. Caller holds s.mu.
func (s *Store) journal(payload []byte) error {
	if len(payload) > maxRecordSize {
		return fmt.Errorf("diskstore: record of %d bytes exceeds maximum", len(payload))
	}
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		if s.active == nil || s.broken || s.activeSize >= s.segBytes {
			if err := s.rotateLocked(); err != nil {
				lastErr = err
				continue
			}
		}
		if err := s.writeToActive(payload); err != nil {
			// The segment's tail state is now unknown (a torn record may
			// be on disk); never append after it.
			s.broken = true
			lastErr = err
			continue
		}
		s.cnt.appends.Inc()
		return nil
	}
	return fmt.Errorf("diskstore: journal failed after retries: %w", lastErr)
}

// Append durably archives a committed (block, certificate) pair. Rounds
// outside this archive's shard, and rounds already durable in the same
// state, are no-ops — so replaying a recovered chain through Append
// (the restart path) writes nothing. The in-memory image always
// reflects the call even if the disk write errors, so a transient disk
// fault never desynchronizes the node's view; the error reports that
// durability was not achieved.
func (s *Store) Append(b *ledger.Block, c *ledger.Certificate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if !s.mem.Put(b, c) {
		return nil // not this shard's round
	}
	hash := b.Hash()
	st, have := s.durable[b.Round]
	switch {
	case !have:
		var e wire.Encoder
		e.Byte(recPut)
		b.EncodeTo(&e)
		e.Bool(c != nil)
		if c != nil {
			c.EncodeTo(&e)
		}
		if err := s.journal(e.Data()); err != nil {
			return err
		}
	case st.hash == hash && c != nil && c.Value == hash &&
		(!st.hasCert || (c.Final && !st.certFinal)):
		// Same block, new or upgraded certificate: journal just the cert.
		var e wire.Encoder
		e.Byte(recCert)
		e.Uint64(b.Round)
		c.EncodeTo(&e)
		if err := s.journal(e.Data()); err != nil {
			return err
		}
	default:
		return nil // already durable in this state
	}
	s.noteDurable(b.Round)
	return nil
}

// Reconcile durably forces the archive to the canonical block for a
// round (§8.2 fork repair), mirroring ledger.Store.Reconcile. Like
// Append it is a no-op when the durable state already matches.
func (s *Store) Reconcile(b *ledger.Block, c *ledger.Certificate) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.mem.Reconcile(b, c)
	nb, ok := s.mem.Block(b.Round)
	if !ok {
		return nil // not this shard's round
	}
	want := recState{hash: nb.Hash()}
	if nc, ok := s.mem.Cert(b.Round); ok {
		want.hasCert = true
		want.certFinal = nc.Final
	}
	if st, have := s.durable[b.Round]; have && st == want {
		return nil
	}
	var e wire.Encoder
	e.Byte(recReconcile)
	nb.EncodeTo(&e)
	nc, hasCert := s.mem.Cert(b.Round)
	e.Bool(hasCert)
	if hasCert {
		nc.EncodeTo(&e)
	}
	if err := s.journal(e.Data()); err != nil {
		return err
	}
	s.noteDurable(b.Round)
	return nil
}

// AppendCheckpoint durably archives a state snapshot. Checkpoints not
// newer than the one already on disk are no-ops; structurally invalid
// ones (certificate for a different block, account table not matching
// the header's state root) are rejected outright — recovery would drop
// them anyway, so journaling them would only waste the bytes.
func (s *Store) AppendCheckpoint(cp *ledger.Checkpoint) error {
	if _, err := cp.VerifyState(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.checkpoint != nil && cp.Round() <= s.checkpoint.Round() {
		return nil
	}
	e := wire.NewEncoderSize(1 + cp.WireSize())
	e.Byte(recCheckpoint)
	cp.EncodeTo(e)
	if err := s.journal(e.Data()); err != nil {
		return err
	}
	s.checkpoint = cp
	return nil
}

// Checkpoint returns the newest durable state snapshot, if any. It is
// structurally verified (recovery drops records that are not), but the
// caller must still verify the certificate against the committee
// before trusting it — the disk is trusted no more than a peer.
func (s *Store) Checkpoint() (*ledger.Checkpoint, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.checkpoint, s.checkpoint != nil
}

// Recovered returns the in-memory image of the durable archive — what
// Open restored plus everything appended since. The caller must treat
// it as untrusted input (re-verify certificates) exactly as it would a
// chain served by a peer; node.RestoreFromArchive does.
func (s *Store) Recovered() *ledger.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem
}

// LastRound returns the highest durable round, if any.
func (s *Store) LastRound() (uint64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.last, s.haveAny
}

// Rounds returns how many rounds are durable.
func (s *Store) Rounds() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.Rounds()
}

// Dir returns the data directory.
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters: recovery numbers
// from the last Open, operational numbers since Open.
func (s *Store) Stats() Stats {
	return Stats{
		RecoveredRounds:  int(s.cnt.recoveredRounds.Load()),
		RecoveredRecords: int(s.cnt.recoveredRecords.Load()),
		TruncatedBytes:   s.cnt.truncatedBytes.Load(),
		DroppedRecords:   int(s.cnt.droppedRecords.Load()),
		Appends:          int(s.cnt.appends.Load() - s.base.appends),
		Rotations:        int(s.cnt.rotations.Load() - s.base.rotations),
		WriteErrors:      int(s.cnt.writeErrors.Load() - s.base.writeErrors),
		SyncErrors:       int(s.cnt.syncErrors.Load() - s.base.syncErrors),
	}
}

// Close syncs and closes the active segment. Further writes fail with
// ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.active == nil {
		return nil
	}
	var err error
	if !s.noSync && !s.broken {
		err = s.active.Sync()
	}
	if cerr := s.active.Close(); err == nil {
		err = cerr
	}
	s.active = nil
	return err
}
