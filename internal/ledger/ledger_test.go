package ledger

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/sortition"
	"algorand/internal/wire"
)

// population is a test universe of users with equal weight.
type population struct {
	provider crypto.Provider
	ids      []crypto.Identity
	accounts map[crypto.PublicKey]uint64
	weight   uint64
}

func newPopulation(n int, weightEach uint64) *population {
	p := &population{
		provider: crypto.NewFast(),
		accounts: make(map[crypto.PublicKey]uint64, n),
		weight:   weightEach,
	}
	for i := 0; i < n; i++ {
		id := p.provider.NewIdentity(crypto.SeedFromUint64(uint64(i)))
		p.ids = append(p.ids, id)
		p.accounts[id.PublicKey()] = weightEach
	}
	return p
}

func (p *population) ledger() *Ledger {
	return New(p.provider, DefaultConfig(), p.accounts, crypto.HashBytes("genesis-seed"))
}

// proposeBlock builds a valid block extending l's head, proposed by ids[0].
func (p *population) proposeBlock(l *Ledger, txns []Transaction, ts time.Duration) *Block {
	id := p.ids[0]
	round := l.NextRound()
	out, proof := id.VRFProve(SeedAlpha(l.PrevSeed(), round))
	post := l.Balances().Clone()
	for i := range txns {
		post.ApplyTx(&txns[i])
	}
	return &Block{
		Round:     round,
		PrevHash:  l.HeadHash(),
		Timestamp: ts,
		StateRoot: post.Root(),
		Seed:      SeedFromVRF(out),
		SeedProof: proof,
		Proposer:  id.PublicKey(),
		Txns:      txns,
	}
}

// makeCert builds a valid certificate for value at (round, step) by
// running sortition across the whole population.
func (p *population) makeCert(l *Ledger, round, step uint64, value crypto.Digest, tau uint64, final bool) *Certificate {
	seed := l.SortitionSeed(round)
	weights, total := l.SortitionWeights(round)
	role := sortition.Role{Kind: sortition.RoleCommittee, Round: round, Step: step}
	cert := &Certificate{Round: round, Step: step, Value: value, Final: final}
	for _, id := range p.ids {
		res := sortition.Execute(id, seed[:], role, tau, weights[id.PublicKey()], total)
		if res.J == 0 {
			continue
		}
		v := Vote{
			Sender:    id.PublicKey(),
			Round:     round,
			Step:      step,
			SortHash:  res.Output,
			SortProof: res.Proof,
			PrevHash:  l.HeadHash(),
			Value:     value,
		}
		v.Sign(id)
		cert.Votes = append(cert.Votes, v)
	}
	return cert
}

func TestTransactionSignVerify(t *testing.T) {
	p := newPopulation(2, 100)
	tx := Transaction{From: p.ids[0].PublicKey(), To: p.ids[1].PublicKey(), Amount: 5}
	tx.Sign(p.ids[0])
	if !tx.VerifySig(p.provider) {
		t.Fatal("valid tx signature rejected")
	}
	tx.Amount = 6
	if tx.VerifySig(p.provider) {
		t.Fatal("tampered tx accepted")
	}
}

func TestBalancesApply(t *testing.T) {
	p := newPopulation(2, 100)
	b := NewBalances(p.accounts)
	a, bpk := p.ids[0].PublicKey(), p.ids[1].PublicKey()

	tx := &Transaction{From: a, To: bpk, Amount: 30, Nonce: 0}
	if err := b.ApplyTx(tx); err != nil {
		t.Fatal(err)
	}
	if b.Money[a] != 70 || b.Money[bpk] != 130 {
		t.Fatalf("balances %d/%d", b.Money[a], b.Money[bpk])
	}
	if b.Total != 200 {
		t.Fatalf("total changed: %d", b.Total)
	}
	// Replay (same nonce) rejected.
	if err := b.ApplyTx(tx); err == nil {
		t.Fatal("replay accepted")
	}
	// Overdraft rejected.
	if err := b.ApplyTx(&Transaction{From: a, To: bpk, Amount: 1000, Nonce: 1}); err == nil {
		t.Fatal("overdraft accepted")
	}
	// Zero amount rejected.
	if err := b.ApplyTx(&Transaction{From: a, To: bpk, Amount: 0, Nonce: 1}); err == nil {
		t.Fatal("zero amount accepted")
	}
}

func TestBalancesCloneIndependent(t *testing.T) {
	p := newPopulation(2, 100)
	b := NewBalances(p.accounts)
	c := b.Clone()
	c.Money[p.ids[0].PublicKey()] = 1
	if b.Money[p.ids[0].PublicKey()] != 100 {
		t.Fatal("clone aliases original")
	}
}

func TestBlockHashDeterministic(t *testing.T) {
	p := newPopulation(2, 100)
	l := p.ledger()
	b1 := p.proposeBlock(l, nil, time.Second)
	b2 := p.proposeBlock(l, nil, time.Second)
	if b1.Hash() != b2.Hash() {
		t.Fatal("identical blocks hash differently")
	}
	b3 := p.proposeBlock(l, nil, 2*time.Second)
	if b1.Hash() == b3.Hash() {
		t.Fatal("different blocks hash equal")
	}
}

func TestEmptyBlockCanonical(t *testing.T) {
	p := newPopulation(1, 100)
	l := p.ledger()
	e1 := l.NextEmptyBlock()
	e2 := l.NextEmptyBlock()
	if e1.Hash() != e2.Hash() {
		t.Fatal("empty block not canonical")
	}
	if !e1.IsEmpty() {
		t.Fatal("empty block not recognized")
	}
	if err := l.ValidateBlock(e1, time.Minute); err != nil {
		t.Fatalf("canonical empty block rejected: %v", err)
	}
}

func TestValidateBlockChecks(t *testing.T) {
	p := newPopulation(3, 100)
	l := p.ledger()
	now := 10 * time.Second

	good := p.proposeBlock(l, nil, time.Second)
	if err := l.ValidateBlock(good, now); err != nil {
		t.Fatalf("good block rejected: %v", err)
	}

	wrongRound := *good
	wrongRound.Round = 5
	if err := l.ValidateBlock(&wrongRound, now); err == nil {
		t.Fatal("wrong round accepted")
	}

	wrongPrev := *good
	wrongPrev.PrevHash = crypto.Digest{1}
	if err := l.ValidateBlock(&wrongPrev, now); err == nil {
		t.Fatal("wrong prev accepted")
	}

	badSeed := *good
	badSeed.Seed = crypto.Digest{9}
	if err := l.ValidateBlock(&badSeed, now); err == nil {
		t.Fatal("bad seed accepted")
	}

	future := p.proposeBlock(l, nil, now+2*time.Hour)
	if err := l.ValidateBlock(future, now); err == nil {
		t.Fatal("far-future timestamp accepted")
	}

	// Block with invalid transaction.
	badTx := Transaction{From: p.ids[1].PublicKey(), To: p.ids[2].PublicKey(), Amount: 10000, Nonce: 0}
	badTx.Sign(p.ids[1])
	overdraft := p.proposeBlock(l, []Transaction{badTx}, time.Second)
	if err := l.ValidateBlock(overdraft, now); err == nil {
		t.Fatal("overdraft block accepted")
	}

	unsigned := Transaction{From: p.ids[1].PublicKey(), To: p.ids[2].PublicKey(), Amount: 1, Nonce: 0}
	forged := p.proposeBlock(l, []Transaction{unsigned}, time.Second)
	if err := l.ValidateBlock(forged, now); err == nil || !strings.Contains(err.Error(), "signature") {
		t.Fatalf("unsigned tx block: %v", err)
	}
}

func TestCommitChainAndState(t *testing.T) {
	p := newPopulation(3, 100)
	l := p.ledger()

	tx := Transaction{From: p.ids[0].PublicKey(), To: p.ids[1].PublicKey(), Amount: 25, Nonce: 0}
	tx.Sign(p.ids[0])
	b1 := p.proposeBlock(l, []Transaction{tx}, time.Second)
	if err := l.Commit(b1, nil); err != nil {
		t.Fatal(err)
	}
	if l.Head().Round != 1 || l.NextRound() != 2 {
		t.Fatalf("head round %d", l.Head().Round)
	}
	if got := l.Balances().Money[p.ids[1].PublicKey()]; got != 125 {
		t.Fatalf("recipient balance %d", got)
	}

	b2 := p.proposeBlock(l, nil, 2*time.Second)
	if err := l.Commit(b2, nil); err != nil {
		t.Fatal(err)
	}
	if blk, ok := l.BlockAt(1); !ok || blk.Hash() != b1.Hash() {
		t.Fatal("BlockAt(1) wrong")
	}
	if err := l.Commit(b2, nil); err != nil {
		t.Fatalf("duplicate commit should be idempotent: %v", err)
	}
	// Unknown parent rejected.
	orphan := &Block{Round: 7, PrevHash: crypto.Digest{42}}
	if err := l.Commit(orphan, nil); err == nil {
		t.Fatal("orphan commit accepted")
	}
}

func TestSeedRotation(t *testing.T) {
	p := newPopulation(1, 100)
	cfg := DefaultConfig()
	cfg.SeedRefreshInterval = 3
	l := New(p.provider, cfg, p.accounts, crypto.HashBytes("g"))

	// Build 8 rounds of empty blocks.
	for r := 0; r < 8; r++ {
		if err := l.Commit(l.NextEmptyBlock(), nil); err != nil {
			t.Fatal(err)
		}
	}
	// seedRound(r) = r-1-(r mod 3).
	cases := map[uint64]uint64{1: 0, 2: 0, 3: 2, 4: 2, 5: 2, 6: 5, 7: 5, 8: 5}
	for r, want := range cases {
		if got := l.seedRound(r); got != want {
			t.Fatalf("seedRound(%d) = %d, want %d", r, got, want)
		}
	}
	// Seed must equal that block's recorded seed.
	b5, _ := l.BlockAt(5)
	if l.SortitionSeed(7) != b5.Seed {
		t.Fatal("SortitionSeed(7) != seed of block 5")
	}
}

func TestSortitionWeightsLookback(t *testing.T) {
	p := newPopulation(2, 100)
	cfg := DefaultConfig()
	cfg.SeedRefreshInterval = 1 // seedRound(r) = r-1-(r mod 1) = r-1... (r mod 1)=0 so r-1
	cfg.LookbackRounds = 2
	l := New(p.provider, cfg, p.accounts, crypto.HashBytes("g"))

	// Move all money in round 1.
	tx := Transaction{From: p.ids[0].PublicKey(), To: p.ids[1].PublicKey(), Amount: 100, Nonce: 0}
	tx.Sign(p.ids[0])
	b1 := p.proposeBlock(l, []Transaction{tx}, time.Second)
	if err := l.Commit(b1, nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		if err := l.Commit(l.NextEmptyBlock(), nil); err != nil {
			t.Fatal(err)
		}
	}
	// Round 5: seedRound = 4, lookback 2 → weights at round 2: post-transfer.
	w, total := l.SortitionWeights(5)
	if total != 200 {
		t.Fatalf("total %d", total)
	}
	if w[p.ids[0].PublicKey()] != 0 || w[p.ids[1].PublicKey()] != 200 {
		t.Fatalf("weights %v", w)
	}
	// Round 3: seedRound = 2, lookback 2 → round 0 (genesis): pre-transfer.
	w, _ = l.SortitionWeights(3)
	if w[p.ids[0].PublicKey()] != 100 {
		t.Fatalf("lookback weights %v", w)
	}
}

func TestForkTrackingAndSwitch(t *testing.T) {
	p := newPopulation(2, 100)
	l := p.ledger()

	b1 := p.proposeBlock(l, nil, time.Second)
	if err := l.Commit(b1, nil); err != nil {
		t.Fatal(err)
	}
	// A competing block at round 1 (fork off genesis): the canonical
	// empty block.
	genesisBlock, _ := l.BlockAt(0)
	fork := EmptyBlock(1, l.GenesisHash(), crypto.HashBytes("genesis-seed"), genesisBlock.StateRoot)
	if err := l.Commit(fork, nil); err != nil {
		t.Fatal(err)
	}
	// Extend the canonical chain so it is longer.
	b2 := p.proposeBlock(l, nil, 2*time.Second)
	if err := l.Commit(b2, nil); err != nil {
		t.Fatal(err)
	}

	tips := l.ForkTips()
	if len(tips) != 2 {
		t.Fatalf("tips = %d, want 2", len(tips))
	}
	if tips[0].Hash() != b2.Hash() {
		t.Fatal("longest fork should come first")
	}

	// Switch to the fork and back.
	if err := l.SwitchHead(fork.Hash()); err != nil {
		t.Fatal(err)
	}
	if l.Head().Hash() != fork.Hash() || l.NextRound() != 2 {
		t.Fatal("switch failed")
	}
	if err := l.SwitchHead(crypto.Digest{99}); err == nil {
		t.Fatal("switch to unknown block accepted")
	}
}

func TestFinality(t *testing.T) {
	p := newPopulation(40, 10)
	l := p.ledger()

	b1 := p.proposeBlock(l, nil, time.Second)
	cert1 := p.makeCert(l, 1, 1, b1.Hash(), 200, false)
	if err := l.Commit(b1, cert1); err != nil {
		t.Fatal(err)
	}
	if l.IsFinal(b1.Hash()) {
		t.Fatal("tentative block reported final")
	}

	b2 := p.proposeBlock(l, nil, 2*time.Second)
	cert2 := p.makeCert(l, 2, 1, b2.Hash(), 200, true)
	if err := l.Commit(b2, cert2); err != nil {
		t.Fatal(err)
	}
	// Final block and its predecessors are confirmed.
	if !l.IsFinal(b2.Hash()) || !l.IsFinal(b1.Hash()) {
		t.Fatal("finality not propagated to predecessors")
	}
	if l.LastFinal().Hash() != b2.Hash() {
		t.Fatal("lastFinal wrong")
	}
}

func TestCertificateVerify(t *testing.T) {
	p := newPopulation(50, 10)
	l := p.ledger()
	b1 := p.proposeBlock(l, nil, time.Second)
	const tau = 100
	cert := p.makeCert(l, 1, 1, b1.Hash(), tau, false)
	if len(cert.Votes) == 0 {
		t.Fatal("no committee members selected; raise tau")
	}

	seed := l.SortitionSeed(1)
	weights, total := l.SortitionWeights(1)

	// Count the honest vote weight to pick a satisfiable threshold.
	check := func(c *Certificate, threshold uint64) error {
		return c.Verify(p.provider, seed, weights, total, tau, threshold, l.HeadHash())
	}
	if err := check(cert, 1); err != nil {
		t.Fatalf("valid certificate rejected: %v", err)
	}
	// Threshold too high.
	if err := check(cert, 1<<40); err == nil {
		t.Fatal("insufficient votes accepted")
	}
	// Wrong value in one vote.
	bad := *cert
	bad.Votes = append([]Vote(nil), cert.Votes...)
	bad.Votes[0].Value = crypto.Digest{1}
	if err := check(&bad, 1); err == nil {
		t.Fatal("mismatched vote value accepted")
	}
	// Duplicate voter.
	dup := *cert
	dup.Votes = append(append([]Vote(nil), cert.Votes...), cert.Votes[0])
	if err := check(&dup, 1); err == nil {
		t.Fatal("duplicate voter accepted")
	}
	// Tampered signature.
	forged := *cert
	forged.Votes = append([]Vote(nil), cert.Votes...)
	forged.Votes[0].Sig = append([]byte(nil), forged.Votes[0].Sig...)
	forged.Votes[0].Sig[0] ^= 1
	if err := check(&forged, 1); err == nil {
		t.Fatal("forged signature accepted")
	}
	// Wrong previous hash.
	if err := cert.Verify(p.provider, seed, weights, total, tau, 1, crypto.Digest{7}); err == nil {
		t.Fatal("wrong prev hash accepted")
	}
	// Wrong seed: sortition proofs must fail.
	if err := cert.Verify(p.provider, crypto.Digest{1}, weights, total, tau, 1, l.HeadHash()); err == nil {
		t.Fatal("wrong seed accepted")
	}
	// Empty certificate.
	empty := &Certificate{Round: 1, Step: 1, Value: b1.Hash()}
	if err := check(empty, 0); err == nil {
		t.Fatal("empty certificate accepted")
	}
}

func TestCertificateWireSizeMatchesPaper(t *testing.T) {
	// §10.3: each block certificate is ~300 KBytes with the paper's
	// committee parameters (threshold ⌊0.685·2000⌋ = 1370 votes needed).
	votes := make([]Vote, 1371)
	for i := range votes {
		votes[i].SortProof = make([]byte, 80)
		votes[i].Sig = make([]byte, 64)
	}
	c := &Certificate{Votes: votes}
	size := c.WireSize()
	if size != CertWireSize(len(votes)) {
		t.Fatalf("WireSize %d != CertWireSize %d", size, CertWireSize(len(votes)))
	}
	if size < 250<<10 || size > 450<<10 {
		t.Fatalf("certificate size %d bytes; paper reports ~300 KB", size)
	}
}

func TestStoreSharding(t *testing.T) {
	p := newPopulation(1, 100)
	l := p.ledger()
	stores := []*Store{NewStore(0, 3), NewStore(1, 3), NewStore(2, 3)}
	full := NewStore(0, 1)

	var blocks []*Block
	for r := 0; r < 9; r++ {
		b := l.NextEmptyBlock()
		if err := l.Commit(b, nil); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
		for _, s := range stores {
			s.Put(b, nil)
		}
		full.Put(b, nil)
	}
	for _, s := range stores {
		if s.Rounds() != 3 {
			t.Fatalf("shard stored %d rounds, want 3", s.Rounds())
		}
	}
	if full.Rounds() != 9 {
		t.Fatalf("full store has %d rounds", full.Rounds())
	}
	// Sharding divides storage ~proportionally.
	if stores[0].Bytes*2 > full.Bytes {
		t.Fatalf("shard bytes %d vs full %d", stores[0].Bytes, full.Bytes)
	}
	// Round lookup respects responsibility: round 1 belongs to shard 1.
	if _, ok := stores[1].Block(blocks[0].Round); !ok {
		t.Fatal("shard 1 should hold round 1")
	}
	if _, ok := stores[0].Block(blocks[0].Round); ok {
		t.Fatal("shard 0 should not hold round 1")
	}
}

func TestCatchUpValidatesChain(t *testing.T) {
	p := newPopulation(60, 10)
	l := p.ledger()
	const tau = 120
	cp := CommitteeParams{TauStep: tau, StepThreshold: 5, TauFinal: tau, FinalThreshold: 5}

	var blocks []*Block
	var certs []*Certificate
	for r := uint64(1); r <= 4; r++ {
		b := p.proposeBlock(l, nil, time.Duration(r)*time.Minute)
		cert := p.makeCert(l, r, 1, b.Hash(), tau, r == 4)
		if err := l.Commit(b, cert); err != nil {
			t.Fatal(err)
		}
		blocks = append(blocks, b)
		certs = append(certs, cert)
	}

	nl, err := CatchUp(p.provider, DefaultConfig(), p.accounts, crypto.HashBytes("genesis-seed"), blocks, certs, cp)
	if err != nil {
		t.Fatalf("catch-up failed: %v", err)
	}
	if nl.Head().Hash() != l.Head().Hash() {
		t.Fatal("catch-up reached different head")
	}
	if !nl.IsFinal(blocks[3].Hash()) {
		t.Fatal("final certificate not honored")
	}

	// Tampered block must fail.
	tampered := *blocks[1]
	tampered.Timestamp++
	badBlocks := append([]*Block(nil), blocks...)
	badBlocks[1] = &tampered
	if _, err := CatchUp(p.provider, DefaultConfig(), p.accounts, crypto.HashBytes("genesis-seed"), badBlocks, certs, cp); err == nil {
		t.Fatal("tampered chain accepted")
	}

	// Certificate/block mismatch must fail.
	badCerts := append([]*Certificate(nil), certs...)
	badCerts[2] = certs[1]
	if _, err := CatchUp(p.provider, DefaultConfig(), p.accounts, crypto.HashBytes("genesis-seed"), blocks, badCerts, cp); err == nil {
		t.Fatal("mismatched certificate accepted")
	}
}

func TestBlockWireSize(t *testing.T) {
	b := &Block{PayloadPadding: 1 << 20}
	if b.WireSize() < 1<<20 {
		t.Fatal("padding not counted")
	}
	if got := len(wire.Encode(b)); got != b.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", got, b.WireSize())
	}
	tx := Transaction{Sig: make([]byte, 64)}
	b2 := &Block{Txns: []Transaction{tx, tx}}
	if b2.WireSize() != blockFixedSize+2*TxWireSize {
		t.Fatalf("wire size %d", b2.WireSize())
	}
	if got := len(wire.Encode(b2)); got != b2.WireSize() {
		t.Fatalf("encoded %d bytes, WireSize says %d", got, b2.WireSize())
	}
}

func TestMinOfCurrentAndLookbackWeights(t *testing.T) {
	p := newPopulation(2, 100)
	cfg := DefaultConfig()
	cfg.SeedRefreshInterval = 1
	cfg.LookbackRounds = 3
	cfg.MinOfCurrentAndLookback = true
	l := New(p.provider, cfg, p.accounts, crypto.HashBytes("g"))

	// Rounds 1-3: empty. Round 4: user 0 spends 80 of its 100.
	for r := 0; r < 3; r++ {
		if err := l.Commit(l.NextEmptyBlock(), nil); err != nil {
			t.Fatal(err)
		}
	}
	tx := Transaction{From: p.ids[0].PublicKey(), To: p.ids[1].PublicKey(), Amount: 80, Nonce: 0}
	tx.Sign(p.ids[0])
	b4 := p.proposeBlock(l, []Transaction{tx}, time.Second)
	if err := l.Commit(b4, nil); err != nil {
		t.Fatal(err)
	}

	// Round 5: seedRound=4, lookback 3 → snapshot at round 1 (100/100),
	// but the "nothing at stake" rule caps user 0 at its CURRENT 20.
	w, total := l.SortitionWeights(5)
	if w[p.ids[0].PublicKey()] != 20 {
		t.Fatalf("spender's weight %d, want min(100,20)=20", w[p.ids[0].PublicKey()])
	}
	if w[p.ids[1].PublicKey()] != 100 {
		t.Fatalf("receiver's weight %d, want min(100,180)=100", w[p.ids[1].PublicKey()])
	}
	if total != 120 {
		t.Fatalf("total %d, want 120", total)
	}

	// Without the option, the stale lookback balance would be used.
	cfg.MinOfCurrentAndLookback = false
	l2 := New(p.provider, cfg, p.accounts, crypto.HashBytes("g"))
	for r := 0; r < 3; r++ {
		if err := l2.Commit(l2.NextEmptyBlock(), nil); err != nil {
			t.Fatal(err)
		}
	}
	b4b := p.proposeBlock(l2, []Transaction{tx}, time.Second)
	if err := l2.Commit(b4b, nil); err != nil {
		t.Fatal(err)
	}
	w2, _ := l2.SortitionWeights(5)
	if w2[p.ids[0].PublicKey()] != 100 {
		t.Fatalf("plain lookback weight %d, want 100", w2[p.ids[0].PublicKey()])
	}
}

func TestCatchUpRejectsAbsurdCertificateStep(t *testing.T) {
	p := newPopulation(60, 10)
	l := p.ledger()
	const tau = 120

	b := p.proposeBlock(l, nil, time.Minute)
	// A certificate claiming consensus at an absurdly high step: even if
	// the votes verify, the §8.3 step bound must reject it.
	cert := p.makeCert(l, 1, 9999, b.Hash(), tau, false)
	cp := CommitteeParams{TauStep: tau, StepThreshold: 5, TauFinal: tau, FinalThreshold: 5, MaxStep: 200}
	_, err := CatchUp(p.provider, DefaultConfig(), p.accounts, crypto.HashBytes("genesis-seed"),
		[]*Block{b}, []*Certificate{cert}, cp)
	if err == nil {
		t.Fatal("absurd-step certificate accepted")
	}
	// The same certificate at a sane step passes.
	sane := p.makeCert(l, 1, 5, b.Hash(), tau, false)
	if _, err := CatchUp(p.provider, DefaultConfig(), p.accounts, crypto.HashBytes("genesis-seed"),
		[]*Block{b}, []*Certificate{sane}, cp); err != nil {
		t.Fatalf("sane certificate rejected: %v", err)
	}
}

// Property: applying any sequence of (possibly invalid) transactions
// never changes the money supply, never creates negative balances, and
// rejected transactions leave state untouched.
func TestApplyTxConservationQuick(t *testing.T) {
	p := newPopulation(4, 50)
	f := func(ops [12]struct {
		From, To uint8
		Amount   uint16
	}) bool {
		b := NewBalances(p.accounts)
		nonces := map[crypto.PublicKey]uint64{}
		for _, op := range ops {
			from := p.ids[int(op.From)%len(p.ids)]
			to := p.ids[int(op.To)%len(p.ids)]
			tx := &Transaction{
				From:   from.PublicKey(),
				To:     to.PublicKey(),
				Amount: uint64(op.Amount % 80),
				Nonce:  nonces[from.PublicKey()],
			}
			before := b.Money[tx.From] + b.Money[tx.To]
			err := b.ApplyTx(tx)
			if err == nil {
				nonces[tx.From]++
			} else if tx.From != tx.To && b.Money[tx.From]+b.Money[tx.To] != before {
				return false // failed tx mutated state
			}
		}
		var sum uint64
		for _, m := range b.Money {
			sum += m
		}
		return sum == b.Total && b.Total == 200
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: block hashing is injective over the fields we vary.
func TestBlockHashInjectiveQuick(t *testing.T) {
	seen := map[crypto.Digest]string{}
	f := func(round uint16, ts uint32, pad uint16) bool {
		b := &Block{Round: uint64(round), Timestamp: time.Duration(ts), PayloadPadding: int(pad)}
		key := fmt.Sprintf("%d|%d|%d", round, ts, pad)
		h := b.Hash()
		if prev, ok := seen[h]; ok {
			return prev == key
		}
		seen[h] = key
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
