package binomial

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// refCDF computes the binomial CDF with big.Rat exactly (slow, for
// cross-checking).
func refCDF(k, n uint64, pNum, pDen uint64) *big.Rat {
	p := new(big.Rat).SetFrac64(int64(pNum), int64(pDen))
	q := new(big.Rat).Sub(big.NewRat(1, 1), p)
	sum := new(big.Rat)
	term := new(big.Rat).SetInt64(1)
	// term = C(n,i) p^i q^(n-i); start with q^n.
	for i := uint64(0); i < n; i++ {
		term.Mul(term, q)
	}
	ratio := new(big.Rat).Quo(p, q)
	for i := uint64(0); ; i++ {
		sum.Add(sum, term)
		if i >= k {
			break
		}
		// term *= (n-i)/(i+1) * p/q
		term.Mul(term, new(big.Rat).SetFrac64(int64(n-i), int64(i+1)))
		term.Mul(term, ratio)
	}
	return sum
}

func TestCDFAgainstExactRational(t *testing.T) {
	cases := []struct{ n, pNum, pDen uint64 }{
		{10, 1, 2},
		{100, 26, 1000},
		{1000, 2, 100},
		{50, 1, 50},
		{7, 3, 7},
	}
	for _, c := range cases {
		for k := uint64(0); k <= c.n && k <= 20; k++ {
			w := New(c.n, c.pNum, c.pDen)
			got := w.CDF(k)
			want := refCDF(k, c.n, c.pNum, c.pDen)
			wantF := new(big.Float).SetPrec(Prec).SetRat(want)
			diff := new(big.Float).Sub(got, wantF)
			diff.Abs(diff)
			eps := new(big.Float).SetMantExp(big.NewFloat(1), -500)
			if diff.Cmp(eps) > 0 {
				t.Fatalf("CDF(%d; n=%d, p=%d/%d) error too large: %v",
					k, c.n, c.pNum, c.pDen, diff)
			}
		}
	}
}

func TestCDFReachesOne(t *testing.T) {
	w := New(40, 1, 3)
	c := w.CDF(40)
	diff := new(big.Float).Sub(big.NewFloat(1), c)
	diff.Abs(diff)
	eps := new(big.Float).SetMantExp(big.NewFloat(1), -500)
	if diff.Cmp(eps) > 0 {
		t.Fatalf("CDF(n) != 1: %v", c)
	}
}

func TestQuantileBoundaries(t *testing.T) {
	// With n=1, p=1/2: fraction < 1/2 -> j=0... CDF(0)=1/2, so
	// fraction in [0, 1/2) -> 0 and [1/2, 1) -> 1.
	w := New(1, 1, 2)
	half := big.NewFloat(0.5).SetPrec(Prec)
	if j := w.Quantile(half); j != 1 {
		t.Fatalf("Quantile(0.5) = %d, want 1", j)
	}
	w2 := New(1, 1, 2)
	just := big.NewFloat(0.4999999).SetPrec(Prec)
	if j := w2.Quantile(just); j != 0 {
		t.Fatalf("Quantile(0.4999) = %d, want 0", j)
	}
}

func TestDegenerateCases(t *testing.T) {
	// p >= 1: all selected.
	if j := Select([]byte{0x80}, 5, 3, 10); j > 5 {
		t.Fatal("j > w")
	}
	w := New(5, 10, 10)
	if j := w.Quantile(big.NewFloat(0.3)); j != 5 {
		t.Fatalf("p=1 should select all, got %d", j)
	}
	w = New(5, 0, 10)
	if j := w.Quantile(big.NewFloat(0.3)); j != 0 {
		t.Fatalf("p=0 should select none, got %d", j)
	}
	if j := Select(nil, 0, 10, 5); j != 0 {
		t.Fatalf("zero weight selected %d", j)
	}
	w = New(0, 1, 10)
	if j := w.Quantile(big.NewFloat(0.999)); j != 0 {
		t.Fatalf("n=0 selected %d", j)
	}
}

func TestFractionOfHash(t *testing.T) {
	// 0x80 00 ... = 1/2.
	h := make([]byte, 64)
	h[0] = 0x80
	f := FractionOfHash(h)
	if f.Cmp(big.NewFloat(0.5)) != 0 {
		t.Fatalf("fraction = %v, want 0.5", f)
	}
	// All zero = 0.
	if FractionOfHash(make([]byte, 64)).Sign() != 0 {
		t.Fatal("zero hash should map to 0")
	}
	// All 0xff is just under 1.
	for i := range h {
		h[i] = 0xff
	}
	f = FractionOfHash(h)
	if f.Cmp(big.NewFloat(1)) >= 0 || f.Cmp(big.NewFloat(0.999)) < 0 {
		t.Fatalf("fraction = %v", f)
	}
}

// TestSelectMeanProportionalToWeight verifies the core sortition
// property: E[selected] ≈ w·τ/W.
func TestSelectMeanProportionalToWeight(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const W = 10000
	const tau = 200
	for _, w := range []uint64{1, 10, 100, 1000} {
		trials := 3000
		total := uint64(0)
		for i := 0; i < trials; i++ {
			var hash [64]byte
			rng.Read(hash[:])
			total += Select(hash[:], w, W, tau)
		}
		mean := float64(total) / float64(trials)
		want := float64(w) * tau / W
		sigma := math.Sqrt(want) // ~Poisson
		if math.Abs(mean-want) > 6*sigma/math.Sqrt(float64(trials))+0.02 {
			t.Fatalf("w=%d: mean %.3f, want %.3f", w, mean, want)
		}
	}
}

// TestSybilSplittingInvariance: splitting weight among pseudonyms does
// not change the distribution of total selected sub-users (the paper's
// key anti-Sybil argument: B(k1;n1,p)+B(k2;n2,p) = B(k1+k2;n1+n2,p)).
// We verify means and variances match between one user of weight 100
// and 10 users of weight 10.
func TestSybilSplittingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const W = 10000
	const tau = 500
	trials := 2000

	meanVar := func(split int) (float64, float64) {
		w := uint64(100 / split)
		var sum, sumSq float64
		for i := 0; i < trials; i++ {
			total := uint64(0)
			for s := 0; s < split; s++ {
				var hash [64]byte
				rng.Read(hash[:])
				total += Select(hash[:], w, W, tau)
			}
			f := float64(total)
			sum += f
			sumSq += f * f
		}
		mean := sum / float64(trials)
		return mean, sumSq/float64(trials) - mean*mean
	}

	m1, v1 := meanVar(1)
	m10, v10 := meanVar(10)
	if math.Abs(m1-m10) > 0.5 {
		t.Fatalf("means differ: whole=%.3f split=%.3f", m1, m10)
	}
	if math.Abs(v1-v10) > 1.5 {
		t.Fatalf("variances differ: whole=%.3f split=%.3f", v1, v10)
	}
}

// Property: Quantile is monotone in the fraction.
func TestQuantileMonotoneQuick(t *testing.T) {
	f := func(a, b uint64) bool {
		fa := new(big.Float).SetPrec(Prec).Quo(
			new(big.Float).SetUint64(a%1000),
			new(big.Float).SetUint64(1000))
		fb := new(big.Float).SetPrec(Prec).Quo(
			new(big.Float).SetUint64(b%1000),
			new(big.Float).SetUint64(1000))
		if fa.Cmp(fb) > 0 {
			fa, fb = fb, fa
		}
		ja := New(50, 1, 10).Quantile(fa)
		jb := New(50, 1, 10).Quantile(fb)
		return ja <= jb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: result never exceeds the weight.
func TestSelectBoundedQuick(t *testing.T) {
	f := func(hash [64]byte, w16 uint16) bool {
		w := uint64(w16)
		j := Select(hash[:], w, 100000, 2000)
		return j <= w
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSelectSmallWeight(b *testing.B) {
	var hash [64]byte
	hash[0] = 0x55
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(hash[:], 20, 1000000, 2000)
	}
}

func BenchmarkSelectLargeWeight(b *testing.B) {
	var hash [64]byte
	hash[0] = 0x55
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(hash[:], 100000, 1000000, 2000)
	}
}
