package binomial

import (
	"math"
	"math/big"
	"testing"

	"algorand/internal/crypto"
)

// TestSelectHardBoundaries pins the degenerate edges of the sortition
// quantile: zero weight, zero committee, committee as large as the whole
// stake, and the two extreme VRF hashes. These are exactly the places
// where a prover/verifier disagreement would be catastrophic (a j=0 user
// voting, or a selected user rejected by everyone).
func TestSelectHardBoundaries(t *testing.T) {
	zeros := make([]byte, 64)
	ones := make([]byte, 64)
	for i := range ones {
		ones[i] = 0xFF
	}
	mid := crypto.HashBytes("binomial.boundary", []byte("mid"))

	cases := []struct {
		name            string
		hash            []byte
		w, W, tau, want uint64
	}{
		{"zero-weight", mid[:], 0, 1000, 200, 0},
		{"zero-weight-extreme-hash", ones, 0, 1000, 200, 0},
		{"zero-committee", ones, 50, 1000, 0, 0},
		{"committee-equals-stake", zeros, 50, 1000, 1000, 50},
		{"committee-exceeds-stake", zeros, 50, 1000, 2000, 50},
		{"zero-total-weight", mid[:], 50, 0, 200, 50},
		{"min-hash", zeros, 50, 1000, 200, 0},
		{"max-hash-selects-all", ones, 5, 1000, 200, 5},
		{"sole-sub-user-min-hash", zeros, 1, 1, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Select(tc.hash, tc.w, tc.W, tc.tau); got != tc.want {
				t.Fatalf("Select(%s) = %d, want %d", tc.name, got, tc.want)
			}
		})
	}
}

// TestQuantileCDFIntervalAgreement is the CDF↔selection consistency
// check: Quantile(f) = j exactly when f lands in [CDF(j-1), CDF(j)).
// We probe each interval at its midpoint and at its exact lower
// boundary, for parameters spanning the paper's regimes — including the
// Figure 4 committees (τ=2000 and τ=10000) at realistic weights.
func TestQuantileCDFIntervalAgreement(t *testing.T) {
	cases := []struct {
		name          string
		n, pNum, pDen uint64
	}{
		{"small", 10, 1, 4},
		{"tau-step-2000", 1000, 2000, 1_000_000},
		{"tau-final-10000", 1000, 10_000, 1_000_000},
		{"heavy-user", 500, 30, 100},
		{"single-subuser", 1, 1, 2},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			limit := tc.n
			if limit > 12 {
				limit = 12
			}
			prev := big.NewFloat(0).SetPrec(Prec) // CDF(-1) = 0
			for j := uint64(0); j <= limit; j++ {
				cur := New(tc.n, tc.pNum, tc.pDen).CDF(j)
				if cur.Cmp(prev) <= 0 {
					t.Fatalf("CDF not strictly increasing at j=%d", j)
				}
				midpoint := new(big.Float).SetPrec(Prec).Add(prev, cur)
				midpoint.Quo(midpoint, big.NewFloat(2))
				if got := New(tc.n, tc.pNum, tc.pDen).Quantile(midpoint); got != j {
					t.Fatalf("Quantile(midpoint of I_%d) = %d", j, got)
				}
				// The lower boundary belongs to interval j (intervals are
				// half-open: [CDF(j-1), CDF(j)) per Algorithm 1).
				lower := new(big.Float).SetPrec(Prec).Set(prev)
				if got := New(tc.n, tc.pNum, tc.pDen).Quantile(lower); got != j {
					t.Fatalf("Quantile(CDF(%d)) = %d, want %d", int64(j)-1, got, j)
				}
				prev = cur
			}
		})
	}
}

// TestCommitteeSizesFigure4 checks that sortition over a whole
// population actually produces committees of the paper's expected sizes
// (Figure 4: τ=2000 for ordinary steps, τ=10000 for the final step).
// The sum of Select over all users is a sum of independent binomials
// with total mean τ, so each trial must land within a few standard
// deviations of τ.
func TestCommitteeSizesFigure4(t *testing.T) {
	const users = 400
	const weight = 25_000
	const W = users * weight
	for _, tau := range []uint64{2000, 10_000} {
		var total, trials uint64
		for trial := uint64(0); trial < 3; trial++ {
			var committee uint64
			for u := uint64(0); u < users; u++ {
				h := crypto.HashUint64("binomial.fig4", trial*users+u)
				committee += Select(h[:], weight, W, tau)
			}
			sigma := math.Sqrt(float64(tau))
			if math.Abs(float64(committee)-float64(tau)) > 6*sigma {
				t.Fatalf("τ=%d trial %d: committee size %d, want ≈%d (6σ=%.0f)",
					tau, trial, committee, tau, 6*sigma)
			}
			total += committee
			trials++
		}
		mean := float64(total) / float64(trials)
		if math.Abs(mean-float64(tau)) > 4*math.Sqrt(float64(tau)) {
			t.Fatalf("τ=%d: mean committee size %.0f across %d trials", tau, mean, trials)
		}
	}
}

// TestQuantileMaxJ drives the walk to its upper end: with n small and p
// large, the extreme hash must select every sub-user, and j can never
// exceed n no matter the fraction.
func TestQuantileMaxJ(t *testing.T) {
	ones := make([]byte, 64)
	for i := range ones {
		ones[i] = 0xFF
	}
	for _, n := range []uint64{1, 2, 7, 32} {
		if got := Select(ones, n, 10, 9); got != n {
			t.Fatalf("n=%d: extreme hash selected %d of %d sub-users", n, got, n)
		}
	}
}
