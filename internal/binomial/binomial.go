// Package binomial evaluates binomial cumulative distribution functions
// with arbitrary precision, as required by cryptographic sortition
// (Algorithms 1-2 of the Algorand paper).
//
// Sortition maps a VRF output, read as the fraction hash/2^hashlen, onto
// the partition of [0,1) into intervals I_j = [CDF(j-1), CDF(j)) of the
// Binomial(w, τ/W) distribution: the j whose interval contains the
// fraction is the number of selected sub-users. A float64 CDF is not
// good enough here: the prover and every verifier must agree on j
// exactly, and the fraction has hashlen (=512) bits of granularity, so
// we evaluate with big.Float at a precision comfortably beyond that.
package binomial

import "math/big"

// Prec is the working precision in bits. VRF outputs give fractions
// with 512-bit granularity; 640 bits keeps rounding error far below it.
const Prec = 640

// Walker incrementally evaluates the CDF of Binomial(n, p) where
// p = pNum/pDen, walking j upward using the term recurrence
//
//	B(j+1; n, p) = B(j; n, p) · (n-j)/(j+1) · p/(1-p).
//
// The expected number of selected sub-users in sortition is w·τ/W,
// which is small, so the walk terminates after a few terms in practice.
type Walker struct {
	n     uint64
	ratio *big.Float // p/(1-p)
	term  *big.Float // B(j; n, p)
	cdf   *big.Float // CDF(j)
	j     uint64
	// degenerate: p >= 1 (everyone always selected) or p <= 0.
	alwaysAll  bool
	alwaysNone bool
}

// New returns a Walker for Binomial(n, pNum/pDen) positioned at j = 0.
func New(n, pNum, pDen uint64) *Walker {
	w := &Walker{n: n}
	if pDen == 0 || pNum >= pDen {
		w.alwaysAll = true
		return w
	}
	if pNum == 0 || n == 0 {
		w.alwaysNone = true
		return w
	}
	p := new(big.Float).SetPrec(Prec).Quo(
		new(big.Float).SetPrec(Prec).SetUint64(pNum),
		new(big.Float).SetPrec(Prec).SetUint64(pDen),
	)
	q := new(big.Float).SetPrec(Prec).Sub(big.NewFloat(1).SetPrec(Prec), p)
	w.ratio = new(big.Float).SetPrec(Prec).Quo(p, q)
	// term(0) = (1-p)^n via exponentiation by squaring.
	w.term = powUint(q, n)
	w.cdf = new(big.Float).SetPrec(Prec).Set(w.term)
	return w
}

// powUint returns x^e at Prec bits.
func powUint(x *big.Float, e uint64) *big.Float {
	result := big.NewFloat(1).SetPrec(Prec)
	base := new(big.Float).SetPrec(Prec).Set(x)
	for e > 0 {
		if e&1 == 1 {
			result.Mul(result, base)
		}
		base.Mul(base, base)
		e >>= 1
	}
	return result
}

// advance moves to the next j, updating term and cdf.
func (w *Walker) advance() {
	// term(j+1) = term(j) * (n-j)/(j+1) * ratio
	f := new(big.Float).SetPrec(Prec).SetUint64(w.n - w.j)
	f.Quo(f, new(big.Float).SetPrec(Prec).SetUint64(w.j+1))
	w.term.Mul(w.term, f)
	w.term.Mul(w.term, w.ratio)
	w.cdf.Add(w.cdf, w.term)
	w.j++
}

// Quantile returns the smallest j with fraction < CDF(j); this is the
// sortition outcome for a VRF hash whose value is fraction ∈ [0,1).
// If the fraction exceeds CDF(n) (possible only through rounding at the
// extreme tail), n is returned.
func (w *Walker) Quantile(fraction *big.Float) uint64 {
	if w.alwaysAll {
		return w.n
	}
	if w.alwaysNone {
		return 0
	}
	for fraction.Cmp(w.cdf) >= 0 {
		if w.j >= w.n {
			return w.n
		}
		w.advance()
	}
	return w.j
}

// CDF returns the CDF evaluated at k, i.e. P[X <= k], as a big.Float.
// The walker must be fresh (not yet walked past k).
func (w *Walker) CDF(k uint64) *big.Float {
	if w.alwaysAll {
		if k >= w.n {
			return big.NewFloat(1)
		}
		return big.NewFloat(0)
	}
	if w.alwaysNone {
		return big.NewFloat(1)
	}
	for w.j < k && w.j < w.n {
		w.advance()
	}
	return new(big.Float).SetPrec(Prec).Set(w.cdf)
}

// FractionOfHash interprets hash (big-endian) as the fraction
// hash / 2^(8·len(hash)) ∈ [0,1).
func FractionOfHash(hash []byte) *big.Float {
	num := new(big.Int).SetBytes(hash)
	f := new(big.Float).SetPrec(Prec).SetInt(num)
	den := new(big.Float).SetPrec(Prec).SetMantExp(big.NewFloat(1).SetPrec(Prec), 8*len(hash))
	return f.Quo(f, den)
}

// Select is the complete sortition quantile computation: given a VRF
// hash, a user's weight w, total weight W and expected selections tau,
// it returns how many of the user's sub-users are selected.
func Select(hash []byte, w, W, tau uint64) uint64 {
	if w == 0 {
		return 0
	}
	walker := New(w, tau, W)
	return walker.Quantile(FractionOfHash(hash))
}
