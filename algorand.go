// Package algorand is a from-scratch Go reproduction of "Algorand:
// Scaling Byzantine Agreements for Cryptocurrencies" (Gilad, Hemo,
// Micali, Vlachos, Zeldovich — SOSP 2017).
//
// The package is the public façade over the implementation:
//
//   - cryptographic sortition on a VRF we implement ourselves
//     (edwards25519 + ECVRF-EDWARDS25519-SHA512-TAI);
//   - BA⋆, the paper's Byzantine agreement protocol (Algorithms 3-9);
//   - block proposal with priority gossip (§6);
//   - a ledger with seeds, certificates, sharded storage and catch-up
//     (§5, §8);
//   - a deterministic whole-network simulator reproducing the paper's
//     evaluation setup (§10), including adversaries;
//   - the committee-size analysis of §7.5 (Figure 3) and a Nakamoto
//     (Bitcoin) baseline for the throughput comparison (§10.2).
//
// Quick start:
//
//	cfg := algorand.NewSimConfig(50, 3) // 50 users, 3 rounds
//	c := algorand.NewCluster(cfg)
//	c.Run()
//	fmt.Println(algorand.Summarize(c.AllRoundLatencies(1, 3)))
//
// See examples/ for complete programs and DESIGN.md / EXPERIMENTS.md
// for the reproduction methodology.
package algorand

import (
	"time"

	"algorand/internal/baseline"
	"algorand/internal/committee"
	"algorand/internal/crypto"
	"algorand/internal/gateway"
	"algorand/internal/genesis"
	"algorand/internal/ledger"
	"algorand/internal/network"
	"algorand/internal/params"
	"algorand/internal/sim"
	"algorand/internal/sortition"
)

// --- Core types -----------------------------------------------------------

// Params are the protocol parameters (Figure 4 of the paper).
type Params = params.Params

// Digest is a 32-byte SHA-256 hash (block hashes, seeds).
type Digest = crypto.Digest

// PublicKey identifies a user.
type PublicKey = crypto.PublicKey

// Identity is a user's secret-key handle (signing + VRF).
type Identity = crypto.Identity

// CryptoProvider verifies signatures and VRF proofs; Real uses Ed25519
// and our ECVRF, Fast uses keyed hashes with modeled CPU costs.
type CryptoProvider = crypto.Provider

// Transaction is a signed payment.
type Transaction = ledger.Transaction

// Block is one ledger entry (§8.1).
type Block = ledger.Block

// Certificate is the §8.3 vote aggregate proving a block's commitment.
type Certificate = ledger.Certificate

// Ledger is a user's view of the blockchain.
type Ledger = ledger.Ledger

// LedgerConfig tunes seed rotation, weight look-back and timestamp
// checks.
type LedgerConfig = ledger.Config

// CommitteeParams tells certificate verification the committee sizing.
type CommitteeParams = ledger.CommitteeParams

// SortitionResult is the outcome of Algorithm 1.
type SortitionResult = sortition.Result

// SortitionRole names what a user may be selected for.
type SortitionRole = sortition.Role

// --- Simulation -----------------------------------------------------------

// SimConfig describes a simulated deployment (§10 setup).
type SimConfig = sim.Config

// Cluster is a running simulated deployment.
type Cluster = sim.Cluster

// Percentiles summarizes a latency sample as the paper's figures do.
type Percentiles = sim.Percentiles

// NetworkConfig tunes the gossip transport.
type NetworkConfig = network.Config

// --- Access tier ------------------------------------------------------------

// Gateway is one access-tier node: the user-facing front door between
// clients and the consensus cluster (edge validation, deterministic
// cluster routing, a CommitAnnounce-fed read model). Consensus nodes
// behind gateways carry zero client connections.
type Gateway = gateway.Gateway

// GatewayConfig assembles a gateway (set SimConfig.Gateways and
// SimConfig.GatewayCfg to add an access tier to a simulation).
type GatewayConfig = gateway.Config

// GatewayStats is a gateway's end-of-run books.
type GatewayStats = gateway.Stats

// ListenAndServeGateway opens a gateway's client-facing TCP/JSON
// endpoint (submissions, batches, and {"op":...} queries), hardened
// for hostile clients: connection caps with retry hints, frame-size
// limits, idle reaping, typed errors.
func ListenAndServeGateway(addr string, gw *Gateway) (*gateway.Server, error) {
	return gateway.ListenAndServe(addr, gw)
}

// DefaultParams returns the paper's implementation parameters
// (Figure 4): τ_proposer=26, τ_step=2000, T_step=0.685, τ_final=10000,
// T_final=0.74, λ values in seconds.
func DefaultParams() Params { return params.Default() }

// NewSimConfig returns a simulation of n users for the given number of
// rounds, with the paper's protocol structure at laptop scale (see
// DESIGN.md for the scaling discussion).
func NewSimConfig(n int, rounds uint64) SimConfig { return sim.DefaultConfig(n, rounds) }

// NewCluster builds a simulated deployment. Call Run on the result.
func NewCluster(cfg SimConfig) *Cluster { return sim.NewCluster(cfg) }

// Summarize computes min/p25/median/p75/max of a duration sample.
func Summarize(sample []time.Duration) Percentiles { return sim.Summarize(sample) }

// --- Crypto ----------------------------------------------------------------

// NewRealCrypto returns the full-fidelity provider: Ed25519 signatures
// and ECVRF-EDWARDS25519-SHA512-TAI proofs, both implemented in this
// repository.
func NewRealCrypto() CryptoProvider { return crypto.NewReal() }

// NewFastCrypto returns the simulation-grade provider with modeled CPU
// costs (the paper's replace-verification-with-sleeps methodology).
func NewFastCrypto() CryptoProvider { return crypto.NewFast() }

// NewSeed derives a deterministic identity seed.
func NewSeed(x uint64) crypto.Seed { return crypto.SeedFromUint64(x) }

// RandomSeed draws a fresh identity seed from the OS entropy source.
func RandomSeed() (crypto.Seed, error) { return crypto.RandomSeed() }

// SaveSeed / LoadSeed persist identity seeds — a user's only private
// state (§1) — as 0600 key files.
func SaveSeed(path string, seed crypto.Seed) error { return crypto.SaveSeed(path, seed) }

// LoadSeed reads a key file written by SaveSeed.
func LoadSeed(path string) (crypto.Seed, error) { return crypto.LoadSeed(path) }

// --- Genesis ceremony -------------------------------------------------------

// GenesisCeremony is the §8.3 commit-reveal ceremony that derives an
// unpredictable seed₀ once the initial participants are known.
type GenesisCeremony = genesis.Ceremony

// GenesisCommitment / GenesisReveal are the ceremony's two message kinds.
type GenesisCommitment = genesis.Commitment

// GenesisReveal publishes a committed contribution.
type GenesisReveal = genesis.Reveal

// GenesisContribution is one participant's secret randomness.
type GenesisContribution = genesis.Contribution

// NewGenesisCeremony starts a ceremony.
func NewGenesisCeremony(p CryptoProvider) *GenesisCeremony { return genesis.NewCeremony(p) }

// CommitGenesis builds a participant's signed commitment.
func CommitGenesis(id Identity, c GenesisContribution) GenesisCommitment {
	return genesis.Commit(id, c)
}

// --- Sortition --------------------------------------------------------------

// Sortition runs Algorithm 1: it selects the identity for a role in
// proportion to weight w out of total weight W, with expected tau
// selections overall, and returns the proof.
func Sortition(id Identity, seed []byte, role SortitionRole, tau, w, W uint64) SortitionResult {
	return sortition.Execute(id, seed, role, tau, w, W)
}

// VerifySortition runs Algorithm 2: it checks a sortition proof and
// returns the verified number of selected sub-users (0 if invalid).
func VerifySortition(p CryptoProvider, pk PublicKey, proof, seed []byte, role SortitionRole, tau, w, W uint64) (crypto.VRFOutput, uint64) {
	return sortition.Verify(p, pk, proof, seed, role, tau, w, W)
}

// Role kinds for sortition.
const (
	RoleProposer     = sortition.RoleProposer
	RoleCommittee    = sortition.RoleCommittee
	RoleForkProposer = sortition.RoleForkProposer
)

// --- Analysis ----------------------------------------------------------------

// MinCommitteeSize computes the smallest expected committee size (and
// the threshold to use with it) keeping the probability of violating
// BA⋆'s committee constraints below target, for honest weighted
// fraction h — the §7.5 / Figure 3 computation.
func MinCommitteeSize(h, target float64) (tau uint64, threshold float64) {
	return committee.MinTau(h, target)
}

// CommitteeViolationProb evaluates the §7.5 violation probability for a
// given committee configuration.
func CommitteeViolationProb(tau float64, h, threshold float64) float64 {
	return committee.StepViolationProb(tau, h, threshold)
}

// --- Baseline -----------------------------------------------------------------

// BitcoinBaseline simulates Nakamoto consensus at Bitcoin parameters
// for the given duration, for throughput/latency comparisons (§10.2).
func BitcoinBaseline(duration time.Duration) baseline.Result {
	return baseline.Run(baseline.Bitcoin(), duration)
}

// --- Ledger helpers -------------------------------------------------------------

// CatchUp bootstraps a new user by validating a chain of blocks and
// certificates from genesis (§8.3).
func CatchUp(
	p CryptoProvider,
	cfg LedgerConfig,
	genesisAccounts map[PublicKey]uint64,
	seed0 Digest,
	blocks []*Block,
	certs []*Certificate,
	cp CommitteeParams,
) (*Ledger, error) {
	return ledger.CatchUp(p, cfg, genesisAccounts, seed0, blocks, certs, cp)
}
