// Realnode: a real networked Algorand deployment in one program. Five
// nodes — each with its own wall-clock scheduler, full Ed25519+ECVRF
// cryptography, and a TCP gossip transport on loopback — reach
// Byzantine agreement, and then a sixth user joins late and bootstraps
// its ledger over the network by validating blocks against their
// certificates (§8.3), trusting no one.
//
// For a multi-process (or multi-machine) version of the same thing, see
// cmd/algorand-node.
package main

import (
	"fmt"
	"net"
	"sync"
	"time"

	"algorand/internal/crypto"
	"algorand/internal/ledger"
	"algorand/internal/node"
	"algorand/internal/params"
	"algorand/internal/realnet"
	"algorand/internal/vtime"
)

func main() {
	const nodes = 5
	const rounds = 3

	// Wall-clock protocol parameters: ~600ms rounds.
	prm := params.Default()
	prm.TauProposer = 4
	prm.TauStep = 25
	prm.TauFinal = 50
	prm.LambdaPriority = 150 * time.Millisecond
	prm.LambdaStepVar = 100 * time.Millisecond
	prm.LambdaBlock = time.Second
	prm.LambdaStep = 500 * time.Millisecond
	prm.MaxSteps = 12
	prm.BlockSize = 4 << 10

	// Address book: bind ephemeral loopback ports. One extra slot for
	// the late joiner.
	total := nodes + 1
	listeners := make([]net.Listener, total)
	addrs := make([]string, total)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		listeners[i] = ln
		addrs[i] = ln.Addr().String()
	}

	// Genesis: deterministic identities, equal balances.
	provider := crypto.NewReal()
	genesis := make(map[crypto.PublicKey]uint64)
	ids := make([]crypto.Identity, total)
	for i := range ids {
		ids[i] = provider.NewIdentity(crypto.SeedFromUint64(uint64(0xA16 + i)))
		genesis[ids[i].PublicKey()] = 10
	}
	// The late joiner is a small account: its stake is offline until it
	// syncs, and sortition weights count offline money against the
	// honest-online fraction h.
	genesis[ids[nodes].PublicKey()] = 1
	seed0 := crypto.HashBytes("realnode-example-genesis")
	cfg := node.Config{Params: prm, LedgerCfg: ledger.DefaultConfig()}

	fmt.Printf("starting %d real TCP nodes for %d rounds...\n", nodes, rounds)
	var wg sync.WaitGroup
	sims := make([]*vtime.Sim, total)
	transports := make([]*realnet.Transport, total)
	members := make([]*node.Node, total)
	start := time.Now()
	for i := 0; i < nodes; i++ {
		i := i
		sims[i] = vtime.New().Realtime()
		transports[i] = realnet.NewWithListener(sims[i], i, addrs, listeners[i])
		members[i] = node.New(i, sims[i], transports[i], provider, ids[i], cfg, genesis, seed0)
		members[i].StopAfterRound = rounds
		transports[i].Start()
		members[i].Start()
		sims[i].Spawn("watcher", func(p *vtime.Proc) {
			for members[i].Ledger().ChainLength() < rounds {
				p.Sleep(100 * time.Millisecond)
			}
			p.Sleep(2 * time.Second) // keep serving stragglers and the joiner
			p.Sim().Stop()
		})
		wg.Add(1)
		go func() {
			defer wg.Done()
			sims[i].Run(2 * time.Minute)
		}()
	}

	// The late joiner: waits until the network is done, then syncs.
	j := nodes
	sims[j] = vtime.New().Realtime()
	transports[j] = realnet.NewWithListener(sims[j], j, addrs, listeners[j])
	members[j] = node.New(j, sims[j], transports[j], provider, ids[j], cfg, genesis, seed0)
	transports[j].Start()
	var joined uint64
	var joinErr error
	sims[j].Spawn("join-later", func(p *vtime.Proc) {
		p.Sleep(1500 * time.Millisecond) // let the network get ahead
		joined, joinErr = members[j].SyncFromPeersUntil(p, p.Now()+60*time.Second, rounds)
		p.Sim().Stop()
	})
	wg.Add(1)
	go func() {
		defer wg.Done()
		sims[j].Run(2 * time.Minute)
	}()

	wg.Wait()
	for _, tr := range transports {
		tr.Close()
	}

	fmt.Printf("network finished in %v\n", time.Since(start).Round(time.Millisecond))
	for i := 0; i < nodes; i++ {
		head := members[i].Ledger().Head()
		fmt.Printf("  node %d: round %d head %v\n", i, head.Round, head.Hash())
	}
	for _, st := range members[0].Stats {
		fmt.Printf("  round %d: start=%v prop=%v binary=%v end=%v steps=%d final=%v\n",
			st.Round, st.Start.Round(time.Millisecond),
			(st.ProposalDone - st.Start).Round(time.Millisecond),
			(st.BinaryDone - st.ProposalDone).Round(time.Millisecond),
			(st.End - st.BinaryDone).Round(time.Millisecond),
			st.BinarySteps, st.Final)
	}
	if joinErr != nil {
		fmt.Println("late joiner failed:", joinErr)
		return
	}
	fmt.Printf("late joiner synced %d rounds over TCP, head %v (matches: %v)\n",
		joined, members[j].Ledger().HeadHash(),
		members[j].Ledger().HeadHash() == members[0].Ledger().HeadHash())
}
