// Sortition: cryptographic sortition (§5) with the real VRF. Ten users
// with very different balances run Algorithm 1 for a committee role;
// everyone else verifies the winners' proofs with Algorithm 2. Over
// many rounds, each user's share of committee seats converges to their
// share of the money — the Sybil-resistance property — and splitting a
// balance across pseudonyms provably does not help.
package main

import (
	"fmt"

	"algorand"
)

func main() {
	provider := algorand.NewRealCrypto() // full Ed25519 + ECVRF

	// Ten users; user i holds 10·(i+1) units.
	var ids []algorand.Identity
	weights := map[algorand.PublicKey]uint64{}
	var total uint64
	for i := 0; i < 10; i++ {
		id := provider.NewIdentity(algorand.NewSeed(uint64(i)))
		ids = append(ids, id)
		weights[id.PublicKey()] = uint64(10 * (i + 1))
		total += uint64(10 * (i + 1))
	}

	const tau = 30 // expected committee seats per round
	const roundsToRun = 200

	seats := make([]uint64, len(ids))
	for r := 0; r < roundsToRun; r++ {
		seed := []byte(fmt.Sprintf("round-seed-%d", r))
		role := algorand.SortitionRole{Kind: algorand.RoleCommittee, Round: uint64(r), Step: 1}
		for i, id := range ids {
			res := algorand.Sortition(id, seed, role, tau, weights[id.PublicKey()], total)
			if !res.Selected() {
				continue
			}
			// Anyone can verify the proof with just the public key.
			_, j := algorand.VerifySortition(provider, id.PublicKey(), res.Proof,
				seed, role, tau, weights[id.PublicKey()], total)
			if j != res.J {
				fmt.Println("verification mismatch — should never happen")
				return
			}
			seats[i] += j
		}
	}

	fmt.Printf("%-6s %8s %12s %12s\n", "user", "balance", "seat share", "money share")
	var seatTotal uint64
	for _, s := range seats {
		seatTotal += s
	}
	for i := range ids {
		w := weights[ids[i].PublicKey()]
		fmt.Printf("%-6d %8d %11.1f%% %11.1f%%\n", i, w,
			100*float64(seats[i])/float64(seatTotal),
			100*float64(w)/float64(total))
	}

	// Figure 3: how big must committees be in a real deployment?
	fmt.Println("\ncommittee sizing (Figure 3, violation ≤ 5e-9):")
	for _, h := range []float64{0.76, 0.80, 0.85, 0.90} {
		tau, T := algorand.MinCommitteeSize(h, 5e-9)
		fmt.Printf("  honest fraction %.0f%% → τ = %d (threshold %.3f)\n", 100*h, tau, T)
	}
}
