// Quickstart: spin up a simulated Algorand network, run a few rounds of
// consensus, and print the round-completion latencies — the number the
// paper's headline ("transactions confirmed in under a minute") is
// about.
package main

import (
	"fmt"

	"algorand"
)

func main() {
	const users = 50
	const rounds = 3

	fmt.Printf("Starting a %d-user Algorand network for %d rounds...\n", users, rounds)
	cfg := algorand.NewSimConfig(users, rounds)
	cluster := algorand.NewCluster(cfg)
	cluster.Run()

	for r := uint64(1); r <= rounds; r++ {
		lat := cluster.RoundLatencies(r)
		fmt.Printf("round %d: %v\n", r, algorand.Summarize(lat))
	}

	final, empty := cluster.FinalityRate()
	fmt.Printf("final consensus rate: %.0f%%, empty blocks: %.0f%%\n", 100*final, 100*empty)

	// Safety: every node committed the same block in every round.
	if err := cluster.AgreementCheck(); err != nil {
		fmt.Println("AGREEMENT VIOLATION:", err)
		return
	}
	fmt.Println("all nodes agree on every round ✓")
	head := cluster.Nodes[0].Ledger().Head()
	fmt.Printf("chain head: round %d, hash %v\n", head.Round, head.Hash())
}
