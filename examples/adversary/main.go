// Adversary: the paper's §10.4 experiment as a demo. 20% of the users
// are malicious: when one of them wins block proposal it sends
// different blocks to different peers, and whenever they sit on a BA⋆
// committee they vote for two values at once. Algorand detects the
// proposer equivocation, falls back safely, and all honest users keep
// agreeing on one chain — at nearly the honest-case latency (Figure 8).
package main

import (
	"fmt"

	"algorand"
)

func main() {
	const users = 60
	const rounds = 4

	run := func(malicious int) (algorand.Percentiles, float64, error) {
		cfg := algorand.NewSimConfig(users, rounds)
		cfg.Seed = 7
		cluster := algorand.NewCluster(cfg)
		cluster.MakeEquivocatingProposers(malicious)
		cluster.Run()
		if err := cluster.AgreementCheck(); err != nil {
			return algorand.Percentiles{}, 0, err
		}
		lat := algorand.Summarize(cluster.AllRoundLatencies(1, rounds))
		_, empty := cluster.FinalityRate()
		return lat, empty, nil
	}

	honest, emptyH, err := run(0)
	if err != nil {
		fmt.Println("honest run violated agreement:", err)
		return
	}
	fmt.Printf("honest network:     %v (empty rounds: %.0f%%)\n", honest, 100*emptyH)

	attacked, emptyA, err := run(users / 5)
	if err != nil {
		fmt.Println("SAFETY VIOLATION under attack:", err)
		return
	}
	fmt.Printf("20%% equivocating:   %v (empty rounds: %.0f%%)\n", attacked, 100*emptyA)
	fmt.Printf("latency ratio: %.2fx — the attack costs some empty rounds, never safety\n",
		float64(attacked.Median)/float64(honest.Median))
}
