// Payments: the cryptocurrency workload from the paper's Figure 1 —
// users submit signed payments into the gossip network, proposers pack
// them into blocks, BA⋆ commits them, and a brand-new user later joins
// by validating the whole chain from genesis using the §8.3
// certificates (no trust in who served the blocks).
//
// Beyond the two named payments, this example is also the txflow load
// driver: a sustained stream of fee-paying transactions from every
// user exercises the ingestion pipeline end to end — admission,
// signature verification with the relayed-digest cache, the sharded
// fee-ordered mempool, batched TxBatch gossip, and priority assembly —
// and reports the committed throughput the way §10/Figure 8 does
// (payload bytes per hour).
// With -client-scale it instead runs the access-tier experiment: the
// same payment stream plus a million-plus simulated client sessions,
// all entering through four gateway nodes (internal/gateway) while the
// consensus cluster serves zero client connections, written out as
// BENCH_gateway.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"algorand"
	"algorand/internal/experiments"
)

func main() {
	clientScale := flag.Bool("client-scale", false, "run the gateway client-scale experiment and write BENCH_gateway.json")
	sessionRate := flag.Int("sessions-per-sec", 18000, "simulated query sessions per virtual second (with -client-scale)")
	flag.Parse()
	if *clientScale {
		runClientScale(*sessionRate)
		return
	}

	const users = 40
	const rounds = 6
	const txPerSecond = 40.0

	cfg := algorand.NewSimConfig(users, rounds)
	cfg.ShardCount = 1    // every node archives everything (for catch-up)
	cfg.WeightEach = 1000 // fund sustained fee-paying traffic
	cfg.Gateways = 2      // clients enter through the access tier
	cluster := algorand.NewCluster(cfg)

	// Alice (user 1) pays Bob (user 2) 7 units; Bob pays Carol 3. A
	// nonzero fee buys priority in the mempool; it is burned on commit.
	// Like all client traffic, the payments enter through a gateway —
	// consensus nodes never see a client.
	alice, bob, carol := cluster.Identity(1), cluster.Identity(2), cluster.Identity(3)
	pay := func(from algorand.Identity, to algorand.PublicKey, amount, fee, nonce uint64, via int) {
		tx := &algorand.Transaction{From: from.PublicKey(), To: to, Amount: amount, Fee: fee, Nonce: nonce}
		tx.Sign(from)
		gw := cluster.Gateway(via)
		cluster.Sim.After(0, func() {
			gw.CountSession()
			if err := gw.Submit(tx); err != nil {
				fmt.Println("submit rejected:", err)
			}
		})
	}
	pay(alice, bob.PublicKey(), 7, 2, 0, 0)
	pay(bob, carol.PublicKey(), 3, 1, 0, 1)

	// The load: every node's user keeps paying a random peer for the
	// whole run (seeded, so the example is reproducible), through the
	// access tier, honoring typed rejects and retry_after_ms hints.
	cluster.GatewayWorkload(txPerSecond, 1)
	// Plus a read-only client population querying gateway read models.
	cluster.QueryWorkload(2000, 2)

	cluster.Run()
	if err := cluster.AgreementCheck(); err != nil {
		fmt.Println("AGREEMENT VIOLATION:", err)
		return
	}

	bal := cluster.Nodes[0].Ledger().Balances()
	fmt.Printf("after %d rounds:\n", rounds)
	fmt.Printf("  alice: %d units\n", bal.Money[alice.PublicKey()])
	fmt.Printf("  bob:   %d units\n", bal.Money[bob.PublicKey()])
	fmt.Printf("  carol: %d units\n", bal.Money[carol.PublicKey()])

	// Throughput accounting, Figure 8 style: committed transactions and
	// payload over the virtual runtime.
	elapsed := cluster.Sim.Now()
	committed := cluster.CommittedTxCount(rounds)
	payload := cluster.CommittedPayloadBytes(rounds)
	fmt.Printf("committed %d txs, %.1f KB payload in %v virtual (%.1f MB/h)\n",
		committed, float64(payload)/1024, elapsed,
		float64(payload)/(1<<20)/elapsed.Hours())
	fmt.Printf("pipeline (node 0): %v\n", cluster.Nodes[0].TxFlow().Stats())

	// The access tier's books: client sessions served, edge admissions,
	// read-model progress; plus the load driver's retry discipline.
	for i := 0; i < cluster.NumGateways(); i++ {
		st := cluster.Gateway(i).Stats()
		fmt.Printf("gateway %d: sessions=%d queries=%d admitted=%d rejected=%d routed=%d head=%d pending=%d\n",
			i, st.Sessions, st.Queries, st.Admitted, st.Rejected, st.TxsRouted, st.HeadRound, st.Pending)
	}
	ws := cluster.WorkloadStats()
	fmt.Printf("load driver: submitted=%d admitted=%d retries=%d backoffs=%d stale-resyncs=%d\n",
		ws.Submitted, ws.Admitted, ws.Retries, ws.Backoffs, ws.StaleSync)

	// A new user joins: fetch blocks + certificates from node 0's
	// archive and validate everything from genesis (§8.3).
	src := cluster.Nodes[0]
	var blocks []*algorand.Block
	var certs []*algorand.Certificate
	for r := uint64(1); r <= src.Ledger().ChainLength(); r++ {
		b, _ := src.Store().Block(r)
		c, _ := src.Store().Cert(r)
		blocks = append(blocks, b)
		certs = append(certs, c)
	}
	cp := algorand.CommitteeParams{
		TauStep:        cfg.Params.TauStep,
		StepThreshold:  cfg.Params.StepThreshold(),
		TauFinal:       cfg.Params.TauFinal,
		FinalThreshold: cfg.Params.FinalThreshold(),
	}
	fresh, err := algorand.CatchUp(cluster.Provider, cfg.LedgerCfg, cluster.Genesis,
		cluster.Seed0, blocks, certs, cp)
	if err != nil {
		fmt.Println("catch-up failed:", err)
		return
	}
	fmt.Printf("new user bootstrapped to round %d, head %v (matches: %v)\n",
		fresh.ChainLength(), fresh.HeadHash(),
		fresh.HeadHash() == src.Ledger().HeadHash())
}

// runClientScale drives the full access-tier experiment: 50 consensus
// nodes behind 4 gateways, the TxflowThroughput payment stream plus
// sessionRate simulated read-only client sessions per virtual second
// (the default rate yields 1M+ sessions over the run), compared
// against an identical direct-submission baseline.
func runClientScale(sessionRate int) {
	rep := experiments.GatewayClientScale(experiments.DefaultScale(), 100, sessionRate)
	fmt.Printf("%d users behind %d gateways, %d rounds, %.0f tx/s offered:\n",
		rep.Users, rep.Gateways, rep.Rounds, rep.OfferedTPS)
	fmt.Printf("  client sessions: %d (consensus-node client sessions: %d)\n",
		rep.ClientSessions, rep.ConsensusClientSessions)
	fmt.Printf("  committed: %d txs, %.1f MB/h — %.2f× the direct baseline's %.1f MB/h\n",
		rep.CommittedTxs, rep.MBytesPerHour, rep.ThroughputRatio, rep.BaselineMBytesPerHour)
	for i, st := range rep.GatewayStats {
		fmt.Printf("  gateway %d: sessions=%d admitted=%d routed=%d resent=%d head=%d pending=%d (%d B)\n",
			i, st.Sessions, st.Admitted, st.TxsRouted, st.Resent, st.HeadRound, st.Pending, st.PendingBytes)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "marshal:", err)
		os.Exit(1)
	}
	if err := os.WriteFile("BENCH_gateway.json", append(data, '\n'), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write:", err)
		os.Exit(1)
	}
	fmt.Println("wrote BENCH_gateway.json")
}
