// Payments: the cryptocurrency workload from the paper's Figure 1 —
// users submit signed payments into the gossip network, proposers pack
// them into blocks, BA⋆ commits them, and a brand-new user later joins
// by validating the whole chain from genesis using the §8.3
// certificates (no trust in who served the blocks).
//
// Beyond the two named payments, this example is also the txflow load
// driver: a sustained stream of fee-paying transactions from every
// user exercises the ingestion pipeline end to end — admission,
// signature verification with the relayed-digest cache, the sharded
// fee-ordered mempool, batched TxBatch gossip, and priority assembly —
// and reports the committed throughput the way §10/Figure 8 does
// (payload bytes per hour).
package main

import (
	"fmt"

	"algorand"
)

func main() {
	const users = 40
	const rounds = 6
	const txPerSecond = 40.0

	cfg := algorand.NewSimConfig(users, rounds)
	cfg.ShardCount = 1     // every node archives everything (for catch-up)
	cfg.WeightEach = 1000  // fund sustained fee-paying traffic
	cluster := algorand.NewCluster(cfg)

	// Alice (user 1) pays Bob (user 2) 7 units; Bob pays Carol 3. A
	// nonzero fee buys priority in the mempool; it is burned on commit.
	alice, bob, carol := cluster.Identity(1), cluster.Identity(2), cluster.Identity(3)
	pay := func(from algorand.Identity, to algorand.PublicKey, amount, fee, nonce uint64, via int) {
		tx := &algorand.Transaction{From: from.PublicKey(), To: to, Amount: amount, Fee: fee, Nonce: nonce}
		tx.Sign(from)
		node := cluster.Nodes[via]
		cluster.Sim.After(0, func() {
			if err := node.SubmitTx(tx); err != nil {
				fmt.Println("submit rejected:", err)
			}
		})
	}
	pay(alice, bob.PublicKey(), 7, 2, 0, 1)
	pay(bob, carol.PublicKey(), 3, 1, 0, 2)

	// The load: every node's user keeps paying a random peer for the
	// whole run (seeded, so the example is reproducible).
	cluster.Workload(txPerSecond, 1)

	cluster.Run()
	if err := cluster.AgreementCheck(); err != nil {
		fmt.Println("AGREEMENT VIOLATION:", err)
		return
	}

	bal := cluster.Nodes[0].Ledger().Balances()
	fmt.Printf("after %d rounds:\n", rounds)
	fmt.Printf("  alice: %d units\n", bal.Money[alice.PublicKey()])
	fmt.Printf("  bob:   %d units\n", bal.Money[bob.PublicKey()])
	fmt.Printf("  carol: %d units\n", bal.Money[carol.PublicKey()])

	// Throughput accounting, Figure 8 style: committed transactions and
	// payload over the virtual runtime.
	elapsed := cluster.Sim.Now()
	committed := cluster.CommittedTxCount(rounds)
	payload := cluster.CommittedPayloadBytes(rounds)
	fmt.Printf("committed %d txs, %.1f KB payload in %v virtual (%.1f MB/h)\n",
		committed, float64(payload)/1024, elapsed,
		float64(payload)/(1<<20)/elapsed.Hours())
	fmt.Printf("pipeline (node 0): %v\n", cluster.Nodes[0].TxFlow().Stats())

	// A new user joins: fetch blocks + certificates from node 0's
	// archive and validate everything from genesis (§8.3).
	src := cluster.Nodes[0]
	var blocks []*algorand.Block
	var certs []*algorand.Certificate
	for r := uint64(1); r <= src.Ledger().ChainLength(); r++ {
		b, _ := src.Store().Block(r)
		c, _ := src.Store().Cert(r)
		blocks = append(blocks, b)
		certs = append(certs, c)
	}
	cp := algorand.CommitteeParams{
		TauStep:        cfg.Params.TauStep,
		StepThreshold:  cfg.Params.StepThreshold(),
		TauFinal:       cfg.Params.TauFinal,
		FinalThreshold: cfg.Params.FinalThreshold(),
	}
	fresh, err := algorand.CatchUp(cluster.Provider, cfg.LedgerCfg, cluster.Genesis,
		cluster.Seed0, blocks, certs, cp)
	if err != nil {
		fmt.Println("catch-up failed:", err)
		return
	}
	fmt.Printf("new user bootstrapped to round %d, head %v (matches: %v)\n",
		fresh.ChainLength(), fresh.HeadHash(),
		fresh.HeadHash() == src.Ledger().HeadHash())
}
