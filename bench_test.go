// Benchmarks regenerating every table and figure of the paper's
// evaluation (§10) plus Figure 3 and the DESIGN.md ablations. Run with
//
//	go test -bench=. -benchmem
//
// Each benchmark iteration executes a complete experiment, prints the
// measured series, and reports the headline quantity as a custom
// metric. EXPERIMENTS.md records a reference run against the paper's
// numbers.
package algorand_test

import (
	"encoding/json"
	"os"
	"strconv"
	"testing"

	"algorand/internal/experiments"
)

func scale() experiments.Scale { return experiments.DefaultScale() }

// BenchmarkFigure3CommitteeSize regenerates the §7.5 committee-size
// curve (Figure 3): minimal τ for violation ≤ 5·10⁻⁹ as the honest
// fraction varies. Paper: τ=2000 at h=80% with T=0.685.
func BenchmarkFigure3CommitteeSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure3(experiments.DefaultFigure3Fractions())
		for _, p := range pts {
			b.Logf("h=%.2f tau=%d T=%.3f", p.HonestFraction, p.Tau, p.Threshold)
		}
		for _, p := range pts {
			if p.HonestFraction == 0.80 {
				b.ReportMetric(float64(p.Tau), "tau@h=0.8")
			}
		}
	}
}

// BenchmarkFigure5LatencyVsUsers regenerates Figure 5: round latency as
// the number of users grows. Paper: ≈22s median, near-constant from
// 5,000 to 50,000 users.
func BenchmarkFigure5LatencyVsUsers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure5(scale(), experiments.DefaultFigure5Users())
		for _, p := range pts {
			b.Logf("users=%d latency: %v final=%.2f empty=%.2f",
				p.Users, p.Latency, p.FinalRate, p.EmptyRate)
		}
		b.ReportMetric(pts[len(pts)-1].Latency.Median.Seconds(), "s/round@max-users")
	}
}

// BenchmarkFigure6SharedVM regenerates Figure 6: the same sweep with
// many users sharing one VM NIC. Paper: ~4× the latency of Figure 5,
// still flat in the number of users.
func BenchmarkFigure6SharedVM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure6(scale(), experiments.DefaultFigure5Users(), 10)
		for _, p := range pts {
			b.Logf("users=%d latency: %v", p.Users, p.Latency)
		}
		b.ReportMetric(pts[len(pts)-1].Latency.Median.Seconds(), "s/round@max-users")
	}
}

// BenchmarkFigure7BlockSize regenerates Figure 7: the round's phase
// breakdown as block size grows. Paper: proposal time grows with size;
// BA⋆ stays ≈12s; final step ≈6s.
func BenchmarkFigure7BlockSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure7(scale(), experiments.DefaultFigure7Sizes())
		for _, p := range pts {
			b.Logf("size=%dKB proposal=%v ba=%v final=%v total=%v",
				p.BlockSize>>10,
				p.Phases.BlockProposal.Median,
				p.Phases.BAWithoutFinal.Median,
				p.Phases.FinalStep.Median,
				p.Phases.RoundCompletion.Median)
		}
		last := pts[len(pts)-1]
		b.ReportMetric(last.Phases.BAWithoutFinal.Median.Seconds(), "ba-s@max-size")
	}
}

// BenchmarkFigure8Malicious regenerates Figure 8: round latency under
// the §10.4 equivocation attack as the malicious fraction grows.
// Paper: latency is "not significantly affected" up to 20%.
func BenchmarkFigure8Malicious(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure8(scale(), experiments.DefaultFigure8Fractions())
		for _, p := range pts {
			b.Logf("malicious=%d%% latency: %v empty=%.2f final=%.2f",
				p.Users, p.Latency, p.EmptyRate, p.FinalRate)
		}
		b.ReportMetric(pts[len(pts)-1].Latency.Median.Seconds(), "s/round@20pct")
	}
}

// BenchmarkThroughputVsBitcoin regenerates the §10.2 comparison.
// Paper: 327 MB/h at 2 MB blocks; 750 MB/h at 10 MB ≈ 125× Bitcoin's
// 6 MB/h.
func BenchmarkThroughputVsBitcoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.ThroughputVsBitcoin(scale(), []int{1 << 20, 2 << 20, 4 << 20})
		var algo, btc float64
		for _, r := range rows {
			b.Logf("%s blocksize=%dKB throughput=%.1f MB/h confirmation=%v",
				r.System, r.BlockSize>>10, r.MBytesPerHour, r.ConfLatencyMedian)
			if r.System == "algorand" && r.MBytesPerHour > algo {
				algo = r.MBytesPerHour
			}
			if r.System == "bitcoin" {
				btc = r.MBytesPerHour
			}
		}
		b.ReportMetric(algo/btc, "x-bitcoin")
	}
}

// BenchmarkTxflowThroughput is the end-to-end ingestion benchmark: a
// sustained stream of signed payments submitted across the whole
// network, pushed through admission → verification → sharded mempool →
// batched gossip → assembly → BA⋆ commitment, measured as committed
// transactions per second and committed payload MByte/h (the §10.2
// axis; the paper reports ~750 MByte/h at 10 MB blocks). Each run
// rewrites BENCH_txflow.json so the artifact tracks the tree.
func BenchmarkTxflowThroughput(b *testing.B) {
	var rep experiments.TxflowReport
	for i := 0; i < b.N; i++ {
		rep = experiments.TxflowThroughput(scale(), 100)
		b.Logf("users=%d rounds=%d offered=%.0f tx/s → committed %d txs (%.1f tx/s, %.1f MB/h, %.1f%% of paper)",
			rep.Users, rep.Rounds, rep.OfferedTPS, rep.CommittedTxs,
			rep.CommittedTPS, rep.MBytesPerHour, 100*rep.FractionOfPaper)
		b.Logf("pipeline: %v", rep.Pipeline)
		b.ReportMetric(rep.CommittedTPS, "tx/s")
		b.ReportMetric(rep.MBytesPerHour, "MB/h")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile("BENCH_txflow.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_txflow.json: %v", err)
	}
}

// BenchmarkGatewayClientScale is the access-tier benchmark: the
// TxflowThroughput payment stream plus a million-plus simulated
// read-only client sessions, all entering through four gateway nodes
// while consensus serves zero client traffic. It reports committed
// throughput relative to the direct-submission baseline run inline
// (the acceptance bar is ≥0.9×) and rewrites BENCH_gateway.json.
// GATEWAY_SOAK=N multiplies the query-session rate for soak runs.
func BenchmarkGatewayClientScale(b *testing.B) {
	queryRate := 18000 // ~1.2M sessions over the default run's ~65 virtual seconds
	if soak := os.Getenv("GATEWAY_SOAK"); soak != "" {
		n, err := strconv.Atoi(soak)
		if err != nil || n < 1 {
			b.Fatalf("bad GATEWAY_SOAK %q", soak)
		}
		queryRate *= n
	}
	var rep experiments.GatewayReport
	for i := 0; i < b.N; i++ {
		rep = experiments.GatewayClientScale(scale(), 100, queryRate)
		b.Logf("users=%d gateways=%d rounds=%d → committed %d txs (%.1f MB/h, %.2f× direct baseline %.1f MB/h)",
			rep.Users, rep.Gateways, rep.Rounds, rep.CommittedTxs,
			rep.MBytesPerHour, rep.ThroughputRatio, rep.BaselineMBytesPerHour)
		b.Logf("sessions=%d consensus-client-sessions=%d workload=%+v",
			rep.ClientSessions, rep.ConsensusClientSessions, rep.Workload)
		b.ReportMetric(float64(rep.ClientSessions), "sessions")
		b.ReportMetric(rep.ThroughputRatio, "x-direct")
		b.ReportMetric(rep.MBytesPerHour, "MB/h")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile("BENCH_gateway.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_gateway.json: %v", err)
	}
}

// BenchmarkCostsCPU measures the real cryptographic operations that
// dominate Algorand's CPU cost (§10.3: "most of it for verifying
// signatures and VRFs"). See also the per-package crypto benchmarks.
func BenchmarkCostsCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Costs(scale())
		b.Logf("CPU fraction=%.3f of a core/user (paper ~0.065)", rep.CPUCoreFraction)
		b.ReportMetric(rep.CPUCoreFraction, "core-frac/user")
	}
}

// BenchmarkCostsBandwidthStorage measures per-user bandwidth and the
// §8.3 storage costs. Paper: ~10 Mbit/s per user at 1 MB blocks;
// certificates ~300 KB; 10-way sharding → ~130 KB/user/block.
func BenchmarkCostsBandwidthStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.Costs(scale())
		b.Logf("bandwidth=%.2f Mbit/s/user cert=%.0f KB sharded-storage=%.0f KB/user/block",
			rep.BandwidthMbps, rep.CertificateKB, rep.StorageKBPerBlockSharded)
		b.ReportMetric(rep.CertificateKB, "cert-KB")
		b.ReportMetric(rep.BandwidthMbps, "Mbps/user")
	}
}

// BenchmarkTimeoutValidation regenerates §10.5: measured step times vs
// the λ parameters of Figure 4.
func BenchmarkTimeoutValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep := experiments.TimeoutValidation(scale())
		b.Logf("step times: %v (λ_step=20s)", rep.StepTimes)
		b.Logf("completion spread p75-p25: %v (λ_stepvar=5s)", rep.StepSpread)
		b.Logf("priority propagation: %v (λ_priority=5s)", rep.PriorityPropagation)
		b.Logf("timeout fraction: %.3f", rep.TimeoutFraction)
		b.ReportMetric(rep.StepTimes.Median.Seconds(), "step-s")
	}
}

// BenchmarkBAStarStepCount measures the §4/§7 efficiency claim: with an
// honest highest-priority proposer BA⋆ concludes in one binary step
// ("4 interactive steps" with the reductions and final confirmation).
func BenchmarkBAStarStepCount(b *testing.B) {
	for i := 0; i < b.N; i++ {
		honest := experiments.StepCounts(scale(), 0)
		attacked := experiments.StepCounts(scale(), 0.2)
		b.Logf("honest: steps=%v final-rate=%.2f", honest.Histogram, honest.FinalRate)
		b.Logf("20%% malicious: steps=%v final-rate=%.2f", attacked.Histogram, attacked.FinalRate)
		b.ReportMetric(honest.FinalRate, "final-rate")
	}
}

// --- Ablations (DESIGN.md "design choices worth ablating") -----------------

// BenchmarkAblationPriorityGossip disables the §6 priority pre-gossip.
func BenchmarkAblationPriorityGossip(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblatePriorityGossip(scale())
		b.Logf("baseline:  %v", res.Baseline.Latency)
		b.Logf("ablated:   %v (bytes ×%.2f)", res.Ablated.Latency, res.ExtraBytesFraction)
		b.ReportMetric(res.ExtraBytesFraction, "bytes-ratio")
	}
}

// BenchmarkAblationVoteNext3 disables Algorithm 8's vote-in-next-3.
func BenchmarkAblationVoteNext3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblateVoteNext3(scale())
		b.Logf("baseline: %v empty=%.2f", res.Baseline.Latency, res.Baseline.EmptyRate)
		b.Logf("ablated:  %v empty=%.2f", res.Ablated.Latency, res.Ablated.EmptyRate)
		b.ReportMetric(res.Ablated.Latency.Median.Seconds(), "s/round")
	}
}

// BenchmarkAblationEquivocationDiscard compares §10.4's discard-both
// against keep-first under the equivocation attack.
func BenchmarkAblationEquivocationDiscard(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.AblateEquivocationDiscard(scale())
		b.Logf("discard-both: %v empty=%.2f", res.Baseline.Latency, res.Baseline.EmptyRate)
		b.Logf("keep-first:   %v empty=%.2f", res.Ablated.Latency, res.Ablated.EmptyRate)
		b.ReportMetric(res.Baseline.Latency.Median.Seconds(), "s/round")
	}
}

// BenchmarkAblationCommonCoin runs the §7.4 vote-splitting adversary
// against BinaryBA⋆ with and without Algorithm 9's common coin.
func BenchmarkAblationCommonCoin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.RunCoinAblation(6, 42)
		b.Log(res.Summary())
		b.ReportMetric(float64(res.StuckWithout), "stuck-without-coin")
		b.ReportMetric(float64(res.StuckWith), "stuck-with-coin")
	}
}

// BenchmarkPipelineFinalStep measures the §10.2 pipelining optimization
// (final step overlapped with the next round), which the paper
// describes but leaves unimplemented in its prototype.
func BenchmarkPipelineFinalStep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.PipelineThroughput(scale())
		b.Logf("baseline %v/round (final %.2f) → pipelined %v/round (final %.2f)",
			res.BaselineRoundTime, res.BaselineFinalRate,
			res.PipelinedRoundTime, res.PipelinedFinalRate)
		b.ReportMetric(res.Speedup, "x-speedup")
	}
}

// BenchmarkFullRoundEndToEnd is a plain end-to-end throughput bench of
// the simulator itself (not a paper figure): one complete round of a
// 100-user network per iteration.
func BenchmarkFullRoundEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		pts := experiments.Figure5(experiments.Scale{Users: 1, Rounds: 1}, []int{100})
		_ = pts
	}
}

// BenchmarkSnapshotSync is the §8.3 recovery-cost experiment behind
// the checkpointed fast-sync path: at chain lengths 16, 64 and 256 it
// rebuilds a node's ledger twice from a cold durable archive — full
// genesis replay versus checkpoint verification + delta replay — and
// demands the snapshot path be measurably sub-linear in chain length.
// Each run rewrites BENCH_sync.json so the artifact tracks the tree.
// SNAPSHOT_SOAK=N repeats the sweep N times under shifted seeds for
// soak runs (the last sweep is the recorded artifact).
func BenchmarkSnapshotSync(b *testing.B) {
	sweeps := 1
	if soak := os.Getenv("SNAPSHOT_SOAK"); soak != "" {
		n, err := strconv.Atoi(soak)
		if err != nil || n < 1 {
			b.Fatalf("bad SNAPSHOT_SOAK %q", soak)
		}
		sweeps = n
	}
	var rep experiments.SyncReport
	for i := 0; i < b.N; i++ {
		for s := 0; s < sweeps; s++ {
			rep = experiments.SyncFastRestart(scale(), experiments.DefaultSyncLengths(), 10, int64(s)*1000)
			for _, p := range rep.Points {
				b.Logf("chain=%d checkpoint@%d delta=%d full=%.1fms snapshot=%.1fms speedup=%.1fx heads-equal=%v",
					p.ChainLength, p.CheckpointRound, p.DeltaRounds,
					p.FullReplayMs, p.SnapshotSyncMs, p.Speedup, p.HeadsEqual)
			}
			if !rep.SubLinear {
				b.Fatalf("snapshot sync is not sub-linear: %+v", rep.Points)
			}
		}
		last := rep.Points[len(rep.Points)-1]
		b.ReportMetric(last.Speedup, "x-speedup@256")
		b.ReportMetric(last.SnapshotSyncMs, "snapshot-ms@256")
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		b.Fatalf("marshal report: %v", err)
	}
	if err := os.WriteFile("BENCH_sync.json", append(data, '\n'), 0o644); err != nil {
		b.Fatalf("write BENCH_sync.json: %v", err)
	}
}
