module algorand

go 1.22
